"""The per-node cache controller (table-driven).

Bridges three worlds:

* the **processor** (same node, function calls): ``read`` / ``write`` /
  ``sync_write`` / ``drain_wb`` / ``flush_si``;
* the **cache** (tags, LRU, s bits, versions);
* the **network** (requests out, responses/invalidations in; every
  incoming message occupies the controller for ``cache_ctrl_cycles``).

Every *state decision* lives in the declarative transition table built by
:func:`repro.coherence.cache_table.cache_table` for this node's
:class:`~repro.coherence.variants.ProtocolVariant`.  The controller keeps
only the plumbing: message dispatch, MSHR bookkeeping, the write buffer,
fills/evictions, and one bound method per symbolic
:class:`~repro.coherence.events.CacheAction`.  ``_dispatch`` derives the
block's symbolic state (MSHR first — a transaction in flight defines the
transient state — then the frame), asks the table for the row, fires the
single ``protocol_transition`` probe, and executes the row's actions in
order.

Consistency-model behaviour:

* Under **SC** every miss blocks the processor (the ``on_done`` callback
  fires when the transaction completes, carrying the directory's measured
  invalidation wait so the processor can split its stall into the paper's
  read/write "invalidation" vs "other" categories).
* Under **WC** writes flow through the 16-entry coalescing write buffer:
  the processor continues immediately unless the buffer is full.  An entry
  retires when the data has arrived *and* the directory's single forwarded
  acknowledgment (ACK_DONE) is in.  Reads still stall; a read to a block
  with an outstanding write miss waits for the data ("read wb").

DSI behaviour: fills honour the response's ``si``/``tearoff`` flags, the
configured mechanism decides when marked blocks die, and ``flush_si``
implements the synchronization-point flush (tear-off blocks flash-clear in
a single cycle; tracked blocks are walked serially and notified to the
directory, the processor stalling until the last notification is
injected).
"""

from repro.coherence.cache_table import cache_table
from repro.coherence.compile import (
    CACHE_EVENT_INDEX,
    CACHE_EVENTS,
    CACHE_STATE_INDEX,
    CACHE_STATES,
    compile_table,
)
from repro.coherence.diagnostics import cache_diagnostic
from repro.coherence.events import CacheAction as A
from repro.coherence.events import CacheEvent as E
from repro.coherence.events import CacheState as CS
from repro.coherence.variants import ProtocolVariant
from repro.config import Consistency, IdentifyScheme
from repro.core.identify import InvalidationHistory
from repro.core.mechanisms import make_mechanism
from repro.engine.resource import Resource
from repro.errors import ProtocolError
from repro.memory.cache import Cache, EXCLUSIVE, SHARED
from repro.memory.write_buffer import CoalescingWriteBuffer
from repro.network.message import Message, MsgKind

MSHR_READ = 0
MSHR_WRITE = 1
MSHR_UPGRADE = 2

_MSHR_NAMES = {MSHR_READ: "read miss", MSHR_WRITE: "write miss", MSHR_UPGRADE: "upgrade"}

# Integer codes for the compiled dispatch path (repro.coherence.compile):
# states and events are passed as small ints so the hot path indexes dense
# arrays instead of hashing enum members.
_ST_I = CACHE_STATE_INDEX[CS.I]
_ST_S = CACHE_STATE_INDEX[CS.S]
_ST_T = CACHE_STATE_INDEX[CS.T]
_ST_E = CACHE_STATE_INDEX[CS.E]
_ST_IS_D = CACHE_STATE_INDEX[CS.IS_D]
_ST_IM_D = CACHE_STATE_INDEX[CS.IM_D]
_ST_SM_W = CACHE_STATE_INDEX[CS.SM_W]
_ST_SM_WI = CACHE_STATE_INDEX[CS.SM_WI]
_ST_E_A = CACHE_STATE_INDEX[CS.E_A]

_EV_LOAD = CACHE_EVENT_INDEX[E.LOAD]
_EV_STORE = CACHE_EVENT_INDEX[E.STORE]
_EV_SYNC_STORE = CACHE_EVENT_INDEX[E.SYNC_STORE]
_EV_WRITE_AFTER_READ = CACHE_EVENT_INDEX[E.WRITE_AFTER_READ]
_EV_SI_SYNC = CACHE_EVENT_INDEX[E.SI_SYNC]
_EV_SI_OVERFLOW = CACHE_EVENT_INDEX[E.SI_OVERFLOW]
_EV_SC_DROP = CACHE_EVENT_INDEX[E.SC_DROP]
_EV_EVICT = CACHE_EVENT_INDEX[E.EVICT]

#: MsgKind (IntEnum) -> (cache event index, needs frame lookup); list-indexed.
_MSG_EVENTS = [None] * (max(int(kind) for kind in MsgKind) + 1)
for _kind, _event, _needs_frame in (
    (MsgKind.DATA, E.DATA, False),
    (MsgKind.DATA_EX, E.DATA_EX, False),
    (MsgKind.UPGRADE_ACK, E.UPGRADE_ACK, False),
    (MsgKind.ACK_DONE, E.ACK_DONE, False),
    (MsgKind.INV, E.INV, True),
    (MsgKind.WB_REQ, E.WB_REQ, True),
):
    _MSG_EVENTS[_kind] = (CACHE_EVENT_INDEX[_event], _needs_frame)
del _kind, _event, _needs_frame

#: statuses returned to the processor
HIT = "hit"
DONE = "done"
WAIT = "wait"


class Mshr:
    """One outstanding transaction at this cache."""

    __slots__ = (
        "kind",
        "block",
        "on_done",
        "stamp",
        "frame",
        "read_waiters",
        "sync",
        "invalidated",
        "issued_at",
        "acks_pending",
        "pending_write",
        "txn_id",
    )

    def __init__(self, kind, block, on_done=None, stamp=None, frame=None, sync=False):
        self.kind = kind
        self.block = block
        self.on_done = on_done
        self.stamp = stamp
        self.frame = frame  # pinned frame (upgrades only)
        self.read_waiters = []
        self.sync = sync
        self.invalidated = False
        self.issued_at = 0
        self.acks_pending = False
        self.pending_write = None  # (stamp,) write arrived while a read was in flight
        self.txn_id = None  # causal id (allocated only under instrumentation)


class _Ctx:
    """One dispatch's context: the table's guards are lazy properties."""

    __slots__ = ("ctrl", "block", "frame", "mshr", "msg", "stamp", "on_done",
                 "blocking", "sync", "victim", "notices", "inv_data",
                 "lease_reload")

    def __init__(self, ctrl, block, frame=None, mshr=None, msg=None, stamp=None,
                 on_done=None, blocking=False, sync=False, victim=None,
                 notices=None):
        self.ctrl = ctrl
        self.block = block
        self.frame = frame
        self.mshr = mshr
        self.msg = msg
        self.stamp = stamp
        self.on_done = on_done
        self.blocking = blocking  # a blocking store (SC store / sync_write)
        self.sync = sync
        self.victim = victim
        self.notices = notices
        self.inv_data = 0
        self.lease_reload = False  # (Tardis) this dispatch dropped an expired lease

    # Guards ------------------------------------------------------------
    @property
    def frame_valid(self):
        return self.frame is not None and self.frame.valid

    @property
    def dirty(self):
        if self.victim is not None:
            return self.victim.dirty
        return self.frame is not None and self.frame.dirty

    @property
    def pending_write(self):
        return self.mshr is not None and self.mshr.pending_write is not None

    @property
    def wb_full(self):
        return self.ctrl.write_buffer.full

    @property
    def tearoff_grant(self):
        return self.msg.tearoff

    @property
    def acks_pending_grant(self):
        return self.msg.acks_pending

    @property
    def lease_expired(self):
        # (Tardis) the valid leased copy is no longer readable.
        return self.ctrl.pts > self.frame.rts

    @property
    def si_notice_dirty(self):
        # The block self-invalidated, but its dirty notice is still queued
        # behind the flush cost: a racing INV's ack must carry the data.
        notice = self.ctrl._pending_notices.get(self.block)
        return notice is not None and notice.carries_data


class CacheController:
    """Cache + controller + write buffer for one node."""

    def __init__(self, sim, config, node, network, home_map, misses, monitor=None,
                 instrument=None):
        self.sim = sim
        self.config = config
        self.node = node
        self.network = network
        self.home_map = home_map
        self.misses = misses
        self.monitor = monitor
        self.obs = instrument
        self.variant = ProtocolVariant.from_config(config)
        self.table = cache_table(self.variant)
        self.ctable = compiled_cache_table(self.variant)
        # One bound decide per controller: the compiled guard-tree walk, or
        # the original interpreter (--no-fastpath / DSI_NO_FASTPATH).
        self._decide = (
            self.ctable.decide if config.compiled_dispatch
            else self.ctable.decide_interpreted
        )
        self.cache = Cache(config, node)
        self.resource = Resource(sim, name=f"cc{node}")
        self.mshrs = {}
        # Self-invalidation notices collected but not yet injected into the
        # network (the flush cost delays the send).  A racing INV consumes
        # its block's entry so the dirty data rides the acknowledgment.
        self._pending_notices = {}
        self.write_buffer = (
            CoalescingWriteBuffer(
                config.write_buffer_entries, node=node, instrument=instrument
            )
            if config.consistency is Consistency.WC
            else None
        )
        self.mechanism = (
            make_mechanism(config, self.cache, node=node, instrument=instrument)
            if config.dsi_enabled
            else None
        )
        self._wc = config.consistency is Consistency.WC
        self._send_versions = config.dsi_enabled
        self._deferred_fills = []
        # Cache-side identification (§3.1): mark fills of blocks this cache
        # has seen repeatedly invalidated.
        self.history = (
            InvalidationHistory(config.cache_history_entries, config.cache_inval_threshold)
            if config.identify is IdentifyScheme.CACHE
            else None
        )
        # SC tear-off blocks (§3.3): at most one untracked copy, dropped at
        # the next cache miss (Scheurich's condition).
        self._sc_tearoff = config.sc_tearoff
        self._tearoff_frame = None
        # Tardis: this node's program timestamp.  Reads advance it to the
        # observed copy's wts; writes advance it to the new wts; barriers
        # join it across nodes (Machine wires the hook).
        self._tardis = config.tardis
        self.pts = 0
        # Relaxed engine: set by the Machine when the Message-free lanes
        # are active; the processor binds its entry points accordingly.
        self.relaxed = False
        # Lane hot-path prebinds (the lanes' whole point is shaving
        # per-transaction interpreter overhead).
        self._ccc = config.cache_ctrl_cycles
        self._submit = self.resource.submit

    # ------------------------------------------------------------------
    # Symbolic state derivation and dispatch
    # ------------------------------------------------------------------
    def symbolic_state(self, block, frame=None, touch=False):
        """The block's symbolic protocol state (diagnostics/tests).

        ``frame`` may be passed by callers that already hold the block's
        frame — the dispatch paths do, so the caller's own LRU touch is
        the only one that happens.
        """
        if frame is None:
            frame = self.cache.lookup(block, touch=touch)
        return self._derive_state(block, frame)

    def _derive_state(self, block, frame):
        mshr = self.mshrs.get(block)
        if mshr is not None:
            if mshr.acks_pending:
                return CS.E_A
            if mshr.kind == MSHR_READ:
                return CS.IS_D
            if mshr.kind == MSHR_WRITE:
                return CS.IM_D
            return CS.SM_WI if mshr.invalidated else CS.SM_W
        return self._frame_state(frame)

    @staticmethod
    def _frame_state(frame):
        """Stable state of a frame (or eviction victim) alone."""
        if frame is None or not getattr(frame, "valid", True):
            return CS.I
        if frame.tearoff:
            return CS.T
        if frame.state == EXCLUSIVE:
            return CS.E
        return CS.S

    def _derive_state_idx(self, block, frame):
        """Integer form of :meth:`_derive_state` for the compiled path."""
        mshr = self.mshrs.get(block)
        if mshr is not None:
            if mshr.acks_pending:
                return _ST_E_A
            kind = mshr.kind
            if kind == MSHR_READ:
                return _ST_IS_D
            if kind == MSHR_WRITE:
                return _ST_IM_D
            return _ST_SM_WI if mshr.invalidated else _ST_SM_W
        if frame is None or not frame.valid:
            return _ST_I
        if frame.tearoff:
            return _ST_T
        if frame.state == EXCLUSIVE:
            return _ST_E
        return _ST_S

    @staticmethod
    def _frame_state_idx(frame):
        """Integer form of :meth:`_frame_state` (frames and victims)."""
        if frame is None or not getattr(frame, "valid", True):
            return _ST_I
        if frame.tearoff:
            return _ST_T
        if frame.state == EXCLUSIVE:
            return _ST_E
        return _ST_S

    def _dispatch(self, event, ctx, state=-1):
        """Derive state, decide on the table row, execute its actions.

        ``event`` and ``state`` are integer indexes into the compiled
        table's event/state spaces (``repro.coherence.compile``); the
        decide binding chose the compiled tree or the interpreter at
        construction time.
        """
        if state < 0:
            ctx.mshr = self.mshrs.get(ctx.block)
            state = self._derive_state_idx(ctx.block, ctx.frame)
        row = self._decide(state, event, ctx)
        if self.obs is not None:
            self.obs.protocol_transition(
                "cache", self.node, ctx.block, row.state_name, row.event_name,
                row.next_name,
            )
        if row.error is not None:
            raise ProtocolError(
                f"cache {self.node}: {row.error} "
                f"(block {ctx.block}, state {row.state_name})"
            )
        for fn in row.fns:
            fn(self, ctx)
        return row.result

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------
    def try_read(self, block):
        """Fast path: perform a read *hit* with no simulated latency beyond
        the hit cost (which the processor folds into computation).  Returns
        False on a miss without issuing anything (mirrors the table's
        READ_HIT rows; misses go through ``read``)."""
        frame = self.cache.lookup(block)
        if frame is None:
            return False
        if self._tardis:
            if frame.state != EXCLUSIVE and self.pts > frame.rts:
                return False  # expired lease: the LOAD path renews it
            self.pts = max(self.pts, frame.wts)
        if self.monitor:
            self.monitor.on_read(self.node, block, frame.data)
        self.misses.read_hits += 1
        return True

    def try_write(self, block, stamp):
        """Fast path: absorb a write that needs no transaction — an
        exclusive hit, or (WC) a coalescing merge into an outstanding
        entry (the table's WRITE_HIT / WB_MERGE rows).  Returns False
        otherwise, issuing nothing."""
        frame = self.cache.lookup(block)
        if frame is not None and frame.state == EXCLUSIVE:
            if self._tardis:
                self._tardis_write_bump(frame)
            self._apply_write(frame, stamp)
            self.misses.write_hits += 1
            return True
        if self._wc:
            mshr = self.mshrs.get(block)
            if mshr is not None:
                if mshr.kind in (MSHR_WRITE, MSHR_UPGRADE):
                    self.write_buffer.merge(block, stamp)
                    mshr.stamp = stamp
                    self.misses.write_hits += 1
                    return True
                if mshr.pending_write is not None:
                    self.write_buffer.merge(block, stamp)
                    mshr.pending_write = (stamp,)
                    self.misses.write_hits += 1
                    return True
        return False

    def read(self, block, on_done):
        """Processor load.  Returns HIT, or WAIT (``on_done(inval_wait,
        reason)`` fires later; reason is "miss" or "read_wb")."""
        frame = self.cache.lookup(block)
        if self.relaxed and frame is None and block not in self.mshrs:
            return self._lane_read_miss(block, on_done)
        return self._dispatch(_EV_LOAD, _Ctx(self, block, frame=frame, on_done=on_done))

    def write(self, block, stamp, on_done):
        """Processor store.

        SC: returns DONE on an exclusive hit, else WAIT (``on_done`` at
        completion).  WC: returns DONE whenever the write was absorbed
        (hit, coalesced, or buffered); returns WAIT only when the write
        buffer is full, with ``on_done(0, "wb_full")`` firing once the
        write has been accepted.
        """
        frame = self.cache.lookup(block)
        if (
            self.relaxed
            and block not in self.mshrs
            and (frame is None or frame.state != EXCLUSIVE)
        ):
            return self._lane_write_miss(block, stamp, on_done, frame)
        ctx = _Ctx(self, block, frame=frame, stamp=stamp, on_done=on_done,
                   blocking=not self._wc)
        return self._dispatch(_EV_STORE, ctx)

    def sync_write(self, block, stamp, on_done):
        """A swap-like write (lock word): always synchronous, even under
        WC — the processor stalls until the write is globally performed."""
        frame = self.cache.lookup(block)
        ctx = _Ctx(self, block, frame=frame, stamp=stamp, on_done=on_done,
                   blocking=True, sync=True)
        return self._dispatch(_EV_SYNC_STORE, ctx)

    def _wc_write_retry(self, block, stamp, on_done):
        status = self.write(block, stamp, on_done)
        if status == WAIT:
            return  # re-queued on the buffer with the same on_done
        on_done(0, "wb_full")

    def drain_wb(self, on_done):
        """Call ``on_done()`` once the write buffer is empty (immediately
        under SC)."""
        if self.write_buffer is None:
            on_done()
        else:
            self.write_buffer.when_empty(on_done)

    # ------------------------------------------------------------------
    # Self-invalidation
    # ------------------------------------------------------------------
    def flush_si(self, on_done):
        """Self-invalidate marked blocks at a synchronization point."""
        if self.mechanism is None:
            on_done()
            return
        frames = [f for f in self.mechanism.sync_frames() if f.valid and not f.pinned]
        if not frames:
            on_done()
            return
        tearoff_frames = [f for f in frames if f.tearoff]
        tracked = [f for f in frames if not f.tearoff]
        self.misses.bump("self_invalidations", len(frames))
        cost = 1 if tearoff_frames else 0
        cost += len(tracked) * self.config.si_flush_cycles_per_block
        notices = []
        # States are derived up front: a FIFO can list the same frame twice,
        # and the duplicate must replay the same row it matched while valid.
        ordered = [(f, self._frame_state_idx(f)) for f in tearoff_frames + tracked]
        for frame, state in ordered:
            ctx = _Ctx(self, frame.tag, frame=frame, notices=notices)
            self._dispatch(_EV_SI_SYNC, ctx, state=state)
        for msg in notices:
            self._pending_notices[msg.block] = msg
        self.resource.submit(cost, self._flush_send, notices, on_done)

    def _si_notice(self, frame):
        block = frame.tag
        dirty = frame.dirty
        return Message(
            MsgKind.SI_NOTIFY,
            block,
            src=self.node,
            dst=self.home_map.home_of(block),
            data=frame.data,
            si_marked=True,
            dirty=dirty,
            carries_data=dirty,
        )

    def _flush_send(self, notices, on_done):
        # A notice whose registry entry is gone was consumed by a racing
        # INV: its data already rode the acknowledgment.  A FIFO can list
        # the same frame twice, so one batch may hold two notices for one
        # block with only the later one registered — the earlier one must
        # still be sent (the duplicate replays) without evicting it.
        live = []
        for msg in notices:
            current = self._pending_notices.get(msg.block)
            if current is msg:
                del self._pending_notices[msg.block]
                live.append(msg)
            elif current is not None:
                live.append(msg)
        if not live:
            on_done()
            return
        remaining = [len(live)]

        def injected():
            remaining[0] -= 1
            if remaining[0] == 0:
                on_done()

        for msg in live:
            self.network.send(msg, on_injected=injected)

    def _self_invalidate_now(self, frame):
        """FIFO overflow: invalidate one block immediately (no stall).

        The table keeps the copy when its transaction is still in flight
        (the IM_D/SM_W/E_A "keep" rows — the s bit stays set, so the block
        still dies at the next sync-point flush) or when the FIFO entry is
        stale."""
        self._dispatch(_EV_SI_OVERFLOW, _Ctx(self, frame.tag, frame=frame))

    # ------------------------------------------------------------------
    # Outgoing requests
    # ------------------------------------------------------------------
    def _register_mshr(self, mshr, renewal=False):
        """Record an outstanding transaction (one probe span per MSHR)."""
        mshr.issued_at = self.sim.now
        self.mshrs[mshr.block] = mshr
        if self.obs is not None:
            mshr.txn_id = self.obs.alloc_txn()
            self.obs.mshr_open(
                self.node,
                mshr.block,
                _MSHR_NAMES[mshr.kind],
                txn_id=mshr.txn_id,
                blocking=mshr.on_done is not None,
                sync=mshr.sync,
                renewal=renewal,
            )

    def _close_mshr(self, block):
        if self.obs is not None:
            self.obs.mshr_close(self.node, block)

    def _txn_done(self, mshr):
        if self.obs is not None and mshr.txn_id is not None:
            self.obs.txn_done(self.node, mshr.block, mshr.txn_id)

    def _issue(self, kind, block, frame=None, txn=None):
        version = self.cache.stored_version(block) if self._send_versions else None
        msg = Message(
            kind,
            block,
            src=self.node,
            dst=self.home_map.home_of(block),
            version=version,
            txn_id=txn,
        )
        if self._tardis:
            # Requests carry the program timestamp; the upgrade carries its
            # copy's wts (dataless grant iff it matches memory), and a
            # renewal miss the expired copy's retained wts (so the home can
            # score the expiry).
            msg.ts = self.pts
            msg.wts = frame.wts if frame is not None else self.cache.stored_wts(block)
        self.resource.submit(self.config.cache_ctrl_cycles, self.network.send, msg)

    # ------------------------------------------------------------------
    # Incoming messages
    # ------------------------------------------------------------------
    def receive(self, msg):
        self.resource.submit(self.config.cache_ctrl_cycles, self._process, msg)

    def _process(self, msg):
        entry = _MSG_EVENTS[msg.kind]
        if entry is None:
            raise ProtocolError(f"cache {self.node} received unexpected {msg!r}")
        event, needs_frame = entry
        frame = self.cache.lookup(msg.block, touch=False) if needs_frame else None
        self._dispatch(event, _Ctx(self, msg.block, frame=frame, msg=msg))

    def _read_complete(self, mshr, msg, frame):
        if self.monitor:
            self.monitor.on_read(self.node, msg.block, frame.data)
        self._txn_done(mshr)
        if mshr.on_done is not None:
            mshr.on_done(msg.inval_wait, "miss")
        if mshr.pending_write is not None:
            # A WC write arrived while the read was in flight: upgrade now.
            (stamp,) = mshr.pending_write
            ctx = _Ctx(self, msg.block, frame=frame, stamp=stamp)
            self._dispatch(_EV_WRITE_AFTER_READ, ctx,
                           state=self._frame_state_idx(frame))

    def _write_granted(self, mshr, msg, frame):
        if self.monitor and msg.kind is not MsgKind.UPGRADE_ACK:
            self.monitor.on_write(self.node, msg.block, frame.data)
        for waiter in mshr.read_waiters:
            waiter(0, "read_wb")
        mshr.read_waiters = []
        if msg.acks_pending:
            mshr.acks_pending = True
            if self.write_buffer is not None:
                self.write_buffer.mark_data_arrived(msg.block)
            return
        self._write_complete(mshr, msg.inval_wait)

    def _write_complete(self, mshr, inval_wait):
        if self.mshrs.pop(mshr.block, None) is not None:
            self._close_mshr(mshr.block)
        if self.write_buffer is not None and self.write_buffer.get(mshr.block) is not None:
            self.write_buffer.mark_data_arrived(mshr.block)
            self.write_buffer.retire(mshr.block)
        self._txn_done(mshr)
        if mshr.on_done is not None:
            mshr.on_done(inval_wait, "miss")

    def _reply(self, kind, msg, data=0, dirty=False):
        # Acks echo the incoming message's causal id (an INV carries the
        # id of the transaction whose grant is waiting on this ack).
        self.network.send(
            Message(
                kind,
                msg.block,
                src=self.node,
                dst=msg.src,
                data=data,
                dirty=dirty,
                carries_data=dirty,
                txn_id=msg.txn_id,
            )
        )

    # ------------------------------------------------------------------
    # Fills, evictions, writes
    # ------------------------------------------------------------------
    def _apply_write(self, frame, stamp):
        frame.data = stamp
        frame.dirty = True
        if self.monitor:
            self.monitor.on_write(self.node, frame.tag, stamp)

    def _tardis_write_bump(self, frame):
        """Owner write: jump the copy's timestamps past its own lease and
        this node's program time (wts = rts = max(pts, rts + 1))."""
        frame.wts = frame.rts = max(self.pts, frame.rts + 1)
        self.pts = frame.wts

    def _fill(self, block, state, data, version=None, si=False, tearoff=False, dirty=False, then=None):
        if not si and self.history is not None and self.history.should_mark(block):
            # Cache-side identification: this block keeps getting
            # invalidated under us — mark it ourselves.
            si = True
        frame, victim = self.cache.fill(
            block, state, data, version=version, s_bit=si, tearoff=tearoff, dirty=dirty
        )
        if frame is None:
            # Every frame in the set is pinned; retry when a pin releases.
            self._deferred_fills.append(
                (block, state, data, version, si, tearoff, dirty, then)
            )
            return
        if victim is not None:
            self._evict(victim)
        if self.monitor:
            self.monitor.on_fill(self.node, block, state, data, tearoff)
        if self.obs is not None:
            self.obs.cache_fill(
                self.node, block, "E" if state == EXCLUSIVE else "S", si, tearoff
            )
        if tearoff and self._sc_tearoff:
            # SC allows at most one tear-off copy per cache (§3.3).
            self._drop_sc_tearoff()
            self._tearoff_frame = (frame, block)
        if si:
            self._after_si_fill(frame)
        if then is not None:
            then(frame)

    def _drop_sc_tearoff(self):
        """Scheurich's condition: the (single) SC tear-off copy must be
        invalidated at the next cache miss."""
        if self._tearoff_frame is None:
            return
        frame, block = self._tearoff_frame
        self._tearoff_frame = None
        state = (
            _ST_T if frame.valid and frame.tearoff and frame.tag == block else _ST_I
        )
        self._dispatch(_EV_SC_DROP, _Ctx(self, block, frame=frame), state=state)

    def _after_si_fill(self, frame):
        self.misses.bump("si_marked_fills")
        if frame.tearoff:
            self.misses.bump("tearoff_fills")
        overflow = self.mechanism.on_si_fill(frame)
        if overflow is not None:
            self.misses.bump("fifo_overflows")
            self._self_invalidate_now(overflow)

    def retry_deferred_fills(self):
        """Re-attempt fills that found every frame pinned."""
        pending, self._deferred_fills = self._deferred_fills, []
        for block, state, data, version, si, tearoff, dirty, then in pending:
            self._fill(block, state, data, version=version, si=si, tearoff=tearoff, dirty=dirty, then=then)

    def _evict(self, victim):
        ctx = _Ctx(self, victim.block, victim=victim)
        self._dispatch(_EV_EVICT, ctx, state=self._frame_state_idx(victim))

    # ------------------------------------------------------------------
    # Relaxed-engine lanes (Message-free uncontended transactions)
    # ------------------------------------------------------------------
    # Active only when the Machine set ``self.relaxed`` (ExecutionMode
    # .RELAXED, no instrumentation, no invariant monitor, not Tardis).
    # Each lane is a straight-line replica of exactly one reference table
    # row, scheduling the same events at the same cycles — the request's
    # service at this controller, its network-interface injection, the
    # transit hop, and the response's service — without building Message
    # or _Ctx objects or walking the transition table.  Any shape the
    # lane doesn't cover *bails*: it materializes the Message and runs
    # the reference ``_process`` at the very point the reference engine
    # would have, which makes a bail exact by construction.

    def _lane_read_miss(self, block, on_done):
        # LOAD x I: COUNT_READ_MISS [DROP_SC_TEAROFF] ALLOC_MSHR_READ SEND_GETS
        self.misses.read_misses += 1
        if self._sc_tearoff:
            self._drop_sc_tearoff()
        mshr = Mshr(MSHR_READ, block, on_done=on_done)
        mshr.issued_at = self.sim.now
        self.mshrs[block] = mshr
        version = self.cache.stored_version(block) if self._send_versions else None
        self._submit(self._ccc, self._lane_send_gets, block, version)
        return WAIT

    def _lane_send_gets(self, block, version):
        net = self.network
        home = self.home_map.home_of(block)
        target = net.dir_sinks[home]._lane_gets
        args = (block, self.node, version)
        if home == self.node:
            net.relaxed_send_local("GETS", False, target, args)
        else:
            net.relaxed_send_remote("GETS", self.node, False, target, args)

    def _lane_write_miss(self, block, stamp, on_done, frame):
        # STORE x S/T/I (the blocking SC rows, or the buffered WC rows).
        # The row is chosen on the *pre-action* state, exactly like the
        # table dispatch: DROP_SC_TEAROFF below may invalidate this very
        # frame (a store to the registered tear-off copy).
        tearoff_shape = frame is not None and frame.tearoff
        if self._wc:
            if self.write_buffer.full:
                self.write_buffer.when_space(
                    lambda: self._wc_write_retry(block, stamp, on_done)
                )
                return WAIT
            self.misses.write_misses += 1
            self.write_buffer.allocate(block, stamp, self.sim.now)
            on_done = None
            result = DONE
        else:
            self.misses.write_misses += 1
            if self._sc_tearoff:
                self._drop_sc_tearoff()
            result = WAIT
        if frame is not None and not tearoff_shape:
            # tracked shared copy: PIN_ALLOC_MSHR_UPGRADE SEND_UPGRADE
            mshr = Mshr(MSHR_UPGRADE, block, on_done=on_done, stamp=stamp,
                        frame=frame)
            frame.pinned = True
            self.misses.upgrades += 1
            upgrade = True
        else:
            if frame is not None:
                # tear-off copy, invisible to the full map: full GETX
                self.cache.invalidate(frame)
            mshr = Mshr(MSHR_WRITE, block, on_done=on_done, stamp=stamp)
            upgrade = False
        mshr.issued_at = self.sim.now
        self.mshrs[block] = mshr
        version = self.cache.stored_version(block) if self._send_versions else None
        self._submit(self._ccc, self._lane_send_write_req, block, version, upgrade)
        return result

    def _lane_send_write_req(self, block, version, upgrade):
        net = self.network
        home = self.home_map.home_of(block)
        target = net.dir_sinks[home]._lane_write
        args = (block, self.node, version, upgrade)
        name = "UPGRADE" if upgrade else "GETX"
        if home == self.node:
            net.relaxed_send_local(name, False, target, args)
        else:
            net.relaxed_send_remote(name, self.node, False, target, args)

    # -- lane response arrivals (scheduled by the home directory) ------
    def _lane_data(self, block, data, version, si, tearoff):
        self.network.in_flight -= 1
        self._submit(self._ccc, self._lane_data_work, block, data, version, si, tearoff)

    def _lane_data_work(self, block, data, version, si, tearoff):
        mshr = self.mshrs.get(block)
        if mshr is None or mshr.kind != MSHR_READ:
            self._process(Message(
                MsgKind.DATA, block, src=self.home_map.home_of(block),
                dst=self.node, version=version, si=si, tearoff=tearoff,
                data=data, carries_data=True,
            ))
            return
        # DATA x IS_D: POP_CLOSE_MSHR FILL_S
        del self.mshrs[block]
        self._fill(
            block, SHARED, data, version=version, si=si, tearoff=tearoff,
            then=lambda frame: self._lane_read_complete(mshr, frame),
        )

    def _lane_read_complete(self, mshr, frame):
        if mshr.on_done is not None:
            mshr.on_done(0, "miss")
        if mshr.pending_write is not None:
            (stamp,) = mshr.pending_write
            ctx = _Ctx(self, mshr.block, frame=frame, stamp=stamp)
            self._dispatch(_EV_WRITE_AFTER_READ, ctx,
                           state=self._frame_state_idx(frame))

    def _lane_data_ex(self, block, data, version, si):
        self.network.in_flight -= 1
        self._submit(self._ccc, self._lane_data_ex_work, block, data, version, si)

    def _lane_data_ex_work(self, block, data, version, si):
        mshr = self.mshrs.get(block)
        if mshr is None or mshr.kind != MSHR_WRITE or mshr.acks_pending:
            self._process(Message(
                MsgKind.DATA_EX, block, src=self.home_map.home_of(block),
                dst=self.node, version=version, si=si, data=data,
                carries_data=True,
            ))
            return
        # DATA_EX x IM_D: FILL_E_DIRTY
        self._fill(
            block, EXCLUSIVE, mshr.stamp, version=version, si=si, dirty=True,
            then=lambda frame: self._lane_write_granted(mshr, frame),
        )

    def _lane_upgrade_ack(self, block, data, version, si):
        self.network.in_flight -= 1
        self._submit(self._ccc, self._lane_upgrade_ack_work, block, data, version, si)

    def _lane_upgrade_ack_work(self, block, data, version, si):
        mshr = self.mshrs.get(block)
        if (
            mshr is None
            or mshr.kind != MSHR_UPGRADE
            or mshr.invalidated
            or mshr.acks_pending
        ):
            self._process(Message(
                MsgKind.UPGRADE_ACK, block, src=self.home_map.home_of(block),
                dst=self.node, version=version, si=si, data=data,
            ))
            return
        # UPGRADE_ACK x SM_W: UNPIN RETRY_DEFERRED_FILLS PROMOTE_TO_EXCLUSIVE
        #                     APPLY_MSHR_WRITE MARK_SI_FROM_GRANT WRITE_GRANTED
        frame = mshr.frame
        frame.pinned = False
        self.retry_deferred_fills()
        frame.state = EXCLUSIVE
        frame.version = version
        self.cache.note_frame_changed(frame)
        self._apply_write(frame, mshr.stamp)
        if si:
            self.cache.mark_si(frame)
            self._after_si_fill(frame)
        else:
            self.cache.mark_si(frame, marked=False)
        self._lane_write_granted(mshr, frame)

    def _lane_write_granted(self, mshr, frame):
        # _write_granted with a dataless uncontended grant: no acks
        # pending, zero measured invalidation wait.
        for waiter in mshr.read_waiters:
            waiter(0, "read_wb")
        mshr.read_waiters = []
        self._write_complete(mshr, 0)

    # ------------------------------------------------------------------
    # Action implementations (one bound method per CacheAction)
    # ------------------------------------------------------------------
    def _act_read_hit(self, ctx):
        if self.monitor:
            self.monitor.on_read(self.node, ctx.block, ctx.frame.data)
        self.misses.bump("read_hits")

    def _act_queue_read_waiter(self, ctx):
        ctx.mshr.read_waiters.append(ctx.on_done)

    def _act_count_read_miss(self, ctx):
        self.misses.bump("read_misses")

    def _act_count_write_miss(self, ctx):
        self.misses.bump("write_misses")

    def _act_drop_sc_tearoff(self, ctx):
        self._drop_sc_tearoff()

    def _act_alloc_mshr_read(self, ctx):
        ctx.mshr = Mshr(MSHR_READ, ctx.block, on_done=ctx.on_done)
        self._register_mshr(ctx.mshr, renewal=ctx.lease_reload)

    def _act_alloc_mshr_write(self, ctx):
        ctx.mshr = Mshr(
            MSHR_WRITE,
            ctx.block,
            on_done=ctx.on_done if ctx.blocking else None,
            stamp=ctx.stamp,
            sync=ctx.sync,
        )
        self._register_mshr(ctx.mshr)

    def _act_pin_alloc_mshr_upgrade(self, ctx):
        mshr = Mshr(
            MSHR_UPGRADE,
            ctx.block,
            on_done=ctx.on_done if ctx.blocking else None,
            stamp=ctx.stamp,
            frame=ctx.frame,
            sync=ctx.sync,
        )
        ctx.frame.pinned = True
        self.misses.bump("upgrades")
        self._register_mshr(mshr)
        ctx.mshr = mshr

    def _act_send_gets(self, ctx):
        self._issue(MsgKind.GETS, ctx.block, txn=ctx.mshr.txn_id)

    def _act_send_getx(self, ctx):
        self._issue(MsgKind.GETX, ctx.block, txn=ctx.mshr.txn_id)

    def _act_send_upgrade(self, ctx):
        self._issue(MsgKind.UPGRADE, ctx.block, frame=ctx.frame,
                    txn=ctx.mshr.txn_id)

    def _act_write_hit(self, ctx):
        self._apply_write(ctx.frame, ctx.stamp)
        self.misses.bump("write_hits")

    def _act_wb_merge(self, ctx):
        self.write_buffer.merge(ctx.block, ctx.stamp)
        ctx.mshr.stamp = ctx.stamp
        self.misses.bump("write_hits")

    def _act_wb_merge_pending(self, ctx):
        self.write_buffer.merge(ctx.block, ctx.stamp)
        ctx.mshr.pending_write = (ctx.stamp,)
        self.misses.bump("write_hits")

    def _act_wb_wait_space(self, ctx):
        block, stamp, on_done = ctx.block, ctx.stamp, ctx.on_done
        self.write_buffer.when_space(
            lambda: self._wc_write_retry(block, stamp, on_done)
        )

    def _act_wb_alloc(self, ctx):
        self.write_buffer.allocate(ctx.block, ctx.stamp, self.sim.now)

    def _act_wb_alloc_pending(self, ctx):
        self.write_buffer.allocate(ctx.block, ctx.stamp, self.sim.now)
        ctx.mshr.pending_write = (ctx.stamp,)
        self.misses.bump("write_misses")

    def _act_invalidate_copy(self, ctx):
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        self.cache.invalidate(ctx.frame)

    def _act_pop_close_mshr(self, ctx):
        ctx.mshr = self.mshrs.pop(ctx.block)
        self._close_mshr(ctx.block)

    def _act_fill_s(self, ctx):
        mshr, msg = ctx.mshr, ctx.msg
        self._fill(
            msg.block,
            SHARED,
            msg.data,
            version=msg.version,
            si=msg.si,
            tearoff=msg.tearoff,
            then=lambda frame: self._read_complete(mshr, msg, frame),
        )

    def _act_fill_e_clean(self, ctx):
        mshr, msg = ctx.mshr, ctx.msg
        self._fill(
            msg.block,
            EXCLUSIVE,
            msg.data,
            version=msg.version,
            si=msg.si,
            dirty=False,
            then=lambda frame: self._read_complete(mshr, msg, frame),
        )

    def _act_fill_e_dirty(self, ctx):
        mshr, msg = ctx.mshr, ctx.msg
        self._fill(
            msg.block,
            EXCLUSIVE,
            mshr.stamp,
            version=msg.version,
            si=msg.si,
            dirty=True,
            then=lambda frame: self._write_granted(mshr, msg, frame),
        )

    def _act_apply_pending_write(self, ctx):
        self._apply_write(ctx.frame, ctx.stamp)

    def _act_wb_retire(self, ctx):
        if self.write_buffer is not None and self.write_buffer.get(ctx.block) is not None:
            self.write_buffer.mark_data_arrived(ctx.block)
            self.write_buffer.retire(ctx.block)

    def _act_unpin(self, ctx):
        ctx.mshr.frame.pinned = False

    def _act_drop_stale_upgrade_copy(self, ctx):
        frame = ctx.mshr.frame
        if frame.valid and frame.tag == ctx.block:
            if self.monitor:
                self.monitor.on_invalidate(self.node, ctx.block)
            self.cache.invalidate(frame)

    def _act_retry_deferred_fills(self, ctx):
        self.retry_deferred_fills()

    def _act_promote_to_exclusive(self, ctx):
        frame = ctx.frame = ctx.mshr.frame
        frame.state = EXCLUSIVE
        frame.version = ctx.msg.version
        self.cache.note_frame_changed(frame)
        if self.monitor:
            self.monitor.on_fill(self.node, ctx.block, EXCLUSIVE, frame.data, False)

    def _act_apply_mshr_write(self, ctx):
        self._apply_write(ctx.frame, ctx.mshr.stamp)

    def _act_mark_si_from_grant(self, ctx):
        if ctx.msg.si:
            self.cache.mark_si(ctx.frame)
            self._after_si_fill(ctx.frame)
        else:
            self.cache.mark_si(ctx.frame, marked=False)

    def _act_write_granted(self, ctx):
        self._write_granted(ctx.mshr, ctx.msg, ctx.frame)

    def _act_write_complete(self, ctx):
        self._write_complete(ctx.mshr, 0)

    def _act_record_inv(self, ctx):
        self.misses.bump("explicit_invalidations")
        if self.history is not None:
            self.history.record(ctx.block)
        # A migratory (clean) exclusive copy acknowledges without data —
        # the directory still holds the current contents.
        ctx.inv_data = ctx.frame.data

    def _act_mark_upgrade_invalidated(self, ctx):
        ctx.mshr.invalidated = True  # the directory will answer with DATA_EX

    def _act_consume_si_notice(self, ctx):
        # The copy died at a self-invalidation whose notice has not left
        # the node yet.  The reply below enters the node->home lane first,
        # so the dirty data must ride it: a dataless ack would complete
        # the home's racing transaction with a stale memory copy, and the
        # late notice would then be dropped as stale — losing the write.
        notice = self._pending_notices.pop(ctx.block)
        ctx.inv_data = notice.data

    def _act_reply_inv_ack(self, ctx):
        self._reply(MsgKind.INV_ACK, ctx.msg)

    def _act_reply_inv_ack_data(self, ctx):
        self._reply(MsgKind.INV_ACK_DATA, ctx.msg, data=ctx.inv_data, dirty=True)

    def _act_si_sync_silent(self, ctx):
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        if self.obs is not None:
            self.obs.cache_self_invalidate(self.node, ctx.block, at_sync=True)
        self.cache.invalidate(ctx.frame)

    def _act_si_sync_notify(self, ctx):
        ctx.notices.append(self._si_notice(ctx.frame))
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        if self.obs is not None:
            self.obs.cache_self_invalidate(self.node, ctx.block, at_sync=True)
        self.cache.invalidate(ctx.frame)

    def _act_si_early_silent(self, ctx):
        self.misses.bump("self_invalidations")
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        if self.obs is not None:
            self.obs.cache_self_invalidate(self.node, ctx.block, at_sync=False)
        self.cache.invalidate(ctx.frame)

    def _act_si_early_notify(self, ctx):
        self.misses.bump("self_invalidations")
        notice = self._si_notice(ctx.frame)
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        if self.obs is not None:
            self.obs.cache_self_invalidate(self.node, ctx.block, at_sync=False)
        self.cache.invalidate(ctx.frame)
        self._pending_notices[ctx.block] = notice
        self.resource.submit(
            self.config.si_flush_cycles_per_block,
            self._send_pending_notice,
            notice,
        )

    def _send_pending_notice(self, notice):
        if self._pending_notices.get(notice.block) is notice:
            del self._pending_notices[notice.block]
            self.network.send(notice)

    def _act_sc_drop_tearoff(self, ctx):
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        if self.obs is not None:
            self.obs.cache_self_invalidate(self.node, ctx.block, at_sync=False)
        self.misses.bump("self_invalidations")
        self.cache.invalidate(ctx.frame)

    # -- Tardis (leased logical timestamps) ----------------------------
    def _act_tardis_read_hit(self, ctx):
        self.pts = max(self.pts, ctx.frame.wts)
        if self.monitor:
            self.monitor.on_read(self.node, ctx.block, ctx.frame.data)
        self.misses.bump("read_hits")

    def _act_tardis_write_hit(self, ctx):
        self._tardis_write_bump(ctx.frame)
        self._apply_write(ctx.frame, ctx.stamp)
        self.misses.bump("write_hits")

    def _act_lease_expire_si(self, ctx):
        # The free self-invalidation: no message, no ack — the copy just
        # stops being readable at this node's program time.  An MSHR
        # allocated later in the same dispatch (the renewal miss) sees
        # ``lease_reload`` and tags its transaction, so causal accounting
        # can attribute the reload stall to the expired lease rather than
        # a cold miss.
        ctx.lease_reload = True
        self.misses.bump("self_invalidations")
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        if self.obs is not None:
            self.obs.lease_expire(self.node, ctx.block)
        self.cache.invalidate(ctx.frame)

    def _act_tardis_fill_s(self, ctx):
        mshr, msg = ctx.mshr, ctx.msg

        def then(frame):
            frame.wts = msg.wts
            frame.rts = msg.rts
            self.pts = max(self.pts, msg.wts)
            self._read_complete(mshr, msg, frame)

        self._fill(msg.block, SHARED, msg.data, then=then)

    def _act_tardis_fill_e(self, ctx):
        mshr, msg = ctx.mshr, ctx.msg

        def then(frame):
            frame.wts = msg.wts
            frame.rts = msg.rts
            self.pts = max(self.pts, msg.wts)
            self._write_granted(mshr, msg, frame)

        self._fill(msg.block, EXCLUSIVE, mshr.stamp, dirty=True, then=then)

    def _act_tardis_apply_upgrade(self, ctx):
        # Runs after PROMOTE_TO_EXCLUSIVE (which set ctx.frame).
        frame, msg = ctx.frame, ctx.msg
        frame.wts = msg.wts
        frame.rts = msg.rts
        self.pts = max(self.pts, msg.wts)
        self._apply_write(frame, ctx.mshr.stamp)

    def _act_tardis_owner_wb(self, ctx):
        frame = ctx.frame
        if self.monitor:
            self.monitor.on_invalidate(self.node, ctx.block)
        self.network.send(
            Message(
                MsgKind.WB,
                ctx.block,
                src=self.node,
                dst=self.home_map.home_of(ctx.block),
                data=frame.data,
                dirty=True,
                carries_data=True,
                wts=frame.wts,
                rts=frame.rts,
                txn_id=ctx.msg.txn_id,
            )
        )
        self.cache.invalidate(frame)

    def _act_drop_stale_wb_req(self, ctx):
        pass  # this node's own writeback is already on its way to the home

    def _act_evict_wb_ts(self, ctx):
        victim = ctx.victim
        if self.monitor:
            self.monitor.on_invalidate(self.node, victim.block)
        self.network.send(
            Message(
                MsgKind.WB,
                victim.block,
                src=self.node,
                dst=self.home_map.home_of(victim.block),
                data=victim.data,
                dirty=True,
                carries_data=True,
                wts=victim.wts,
                rts=victim.rts,
            )
        )

    def _act_evict_count(self, ctx):
        self.misses.bump("replacements")
        if self.obs is not None:
            self.obs.cache_evict(self.node, ctx.victim.block, ctx.victim.dirty)

    def _act_evict_wb(self, ctx):
        victim = ctx.victim
        if self.monitor:
            self.monitor.on_invalidate(self.node, victim.block)
        self.network.send(
            Message(
                MsgKind.WB,
                victim.block,
                src=self.node,
                dst=self.home_map.home_of(victim.block),
                data=victim.data,
                si_marked=victim.s_bit,
                dirty=True,
                carries_data=True,
            )
        )

    def _act_evict_repl(self, ctx):
        victim = ctx.victim
        if self.monitor:
            self.monitor.on_invalidate(self.node, victim.block)
        self.network.send(
            Message(
                MsgKind.REPL,
                victim.block,
                src=self.node,
                dst=self.home_map.home_of(victim.block),
                si_marked=victim.s_bit,
            )
        )

    # ------------------------------------------------------------------
    def deadlock_diagnostic(self):
        return cache_diagnostic(self)


#: CacheAction -> unbound action method, resolved once at import time.
_ACTIONS = {
    action: getattr(CacheController, f"_act_{action.value}")
    for action in A
}

#: variant -> CompiledTable, memoized like cache_table's own cache.
_COMPILED = {}


def compiled_cache_table(variant):
    """The compiled (integer-indexed) form of ``cache_table(variant)``."""
    compiled = _COMPILED.get(variant)
    if compiled is None:
        compiled = compile_table(
            cache_table(variant), CACHE_STATES, CACHE_EVENTS, _Ctx, _ACTIONS
        )
        _COMPILED[variant] = compiled
    return compiled

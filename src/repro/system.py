"""Machine assembly: wire processors, caches, directories and the network
into one simulated multiprocessor and run a program on it.

This is the main entry point of the library::

    from repro import Machine, SystemConfig, workloads

    program = workloads.em3d(n_procs=32)
    result = Machine(SystemConfig(n_processors=32), program).run()
    print(result.exec_time, result.aggregate_breakdown().as_dict())
"""

from repro.config import ExecutionMode, SystemConfig
from repro.core.identify import make_policy
from repro.directory.controller import DirectoryController
from repro.engine.simulator import BucketSimulator, Simulator
from repro.errors import ConfigError, SimulationError
from repro.memory.address import RoundRobinHome, SegmentHome
from repro.network.network import Network
from repro.processor.cpu import Processor, StampSource
from repro.processor.sync import BarrierManager, LockManager
from repro.protocol.controller import CacheController
from repro.protocol.monitor import CoherenceMonitor, TardisMonitor
from repro.stats.counters import MessageCounters, MissCounters
from repro.stats.report import RunResult


#: The relaxed engine's independently-toggleable layers: the per-cycle
#: bucketed event queue and the Message-free protocol fast lanes.  The
#: equivalence harness narrows this set to localize an observational
#: mismatch to one layer; production relaxed runs always use both.
RELAXED_LAYERS = frozenset({"queue", "lanes"})


class Machine:
    """A complete simulated multiprocessor bound to one program."""

    def __init__(self, config, program, network_cls=Network, instrument=None):
        if not isinstance(config, SystemConfig):
            raise ConfigError("config must be a SystemConfig")
        if program.n_procs != config.n_processors:
            raise ConfigError(
                f"program has {program.n_procs} processors but the machine is "
                f"configured for {config.n_processors}"
            )
        self.config = config
        self.program = program
        # The relaxed engine is forced back to the reference oracle when
        # anything watches the event stream (instrumentation, the
        # invariant monitor): the probe-bus and audit guarantees are
        # defined over reference-engine event shapes.  Custom network
        # classes also force reference — the lanes fold the base class's
        # constant transit latency into their hop arithmetic.
        self.relaxed = (
            config.execution_mode is ExecutionMode.RELAXED
            and instrument is None
            and not config.check_invariants
            and network_cls is Network
        )
        layers = RELAXED_LAYERS if self.relaxed else frozenset()
        sim_cls = BucketSimulator if "queue" in layers else Simulator
        self.sim = sim_cls(max_events=config.max_events or None)
        self.counters = MessageCounters()
        self.misses = MissCounters()
        self.instrument = instrument
        if instrument is not None:
            instrument.bind(self.sim, config.n_processors)
        self.network = network_cls(self.sim, config, self.counters, instrument=instrument)
        if program.home == "segment":
            self.home_map = SegmentHome(config.n_processors, config.block_shift)
        elif program.home == "round-robin":
            self.home_map = RoundRobinHome(config.n_processors)
        else:
            raise ConfigError(f"unknown home policy {program.home!r}")
        if config.check_invariants:
            monitor_cls = TardisMonitor if config.tardis else CoherenceMonitor
            self.monitor = monitor_cls(config)
        else:
            self.monitor = None
        policy = make_policy(config)
        self.directories = [
            DirectoryController(
                self.sim, config, node, self.network, policy, instrument=instrument
            )
            for node in range(config.n_processors)
        ]
        self.controllers = [
            CacheController(
                self.sim, config, node, self.network, self.home_map, self.misses,
                self.monitor, instrument=instrument,
            )
            for node in range(config.n_processors)
        ]
        for node in range(config.n_processors):
            self.network.attach(node, self.controllers[node], self.directories[node])
        # The protocol lanes cover the plain-protocol request shapes;
        # Tardis timestamps ride on every request/grant, so leased
        # configs stay on the reference handlers (still under the
        # bucketed queue).
        if self.relaxed and "lanes" in layers and not config.tardis:
            for controller in self.controllers:
                controller.relaxed = True
        self.locks = LockManager()
        self.barrier = BarrierManager(self.sim, config.n_processors, config.barrier_latency)
        if config.tardis:
            # A barrier orders every node's accesses; join pts so no node
            # leaves still reading leases from before a remote's writes.
            # (Locks need no hook: the acquirer's sync write to the lock
            # word jumps its pts past the releaser's.)
            self.barrier.on_release = self._tardis_pts_join
        self.stamps = StampSource()
        self.processors = [
            Processor(
                self.sim,
                config,
                node,
                self.controllers[node],
                program.traces[node],
                self.locks,
                self.barrier,
                self.stamps,
                instrument=instrument,
            )
            for node in range(config.n_processors)
        ]
        self._register_deadlock_hooks()
        self._ran = False

    def _tardis_pts_join(self, nodes):
        peak = max(controller.pts for controller in self.controllers)
        for controller in self.controllers:
            controller.pts = peak

    def _register_deadlock_hooks(self):
        sim = self.sim
        for proc in self.processors:
            sim.add_deadlock_hook(proc.deadlock_diagnostic)
        for controller in self.controllers:
            sim.add_deadlock_hook(controller.deadlock_diagnostic)
        for directory in self.directories:
            sim.add_deadlock_hook(directory.deadlock_diagnostic)
        sim.add_deadlock_hook(self.network.deadlock_diagnostic)
        sim.add_deadlock_hook(self.locks.deadlock_diagnostic)
        sim.add_deadlock_hook(self.barrier.deadlock_diagnostic)

    def progress(self):
        """Live progress counters for an in-flight run.

        Read-only and safe to call from another thread while :meth:`run`
        executes (plain int reads of monotone counters, no locking): the
        harness heartbeat sampler (``repro.harness.telemetry``) polls
        this to stream sim-cycle / event / retired-op counts without
        perturbing the simulation.  ``ops_retired`` is the per-processor
        trace index, advanced at quantum boundaries — a retirement proxy,
        exact once the run quiesces.
        """
        return {
            "sim_cycles": self.sim.now,
            "events_fired": self.sim.events_fired,
            "ops_retired": sum(proc.idx for proc in self.processors),
            "ops_total": sum(len(trace.kinds) for trace in self.program.traces),
        }

    def run(self):
        """Run the program to completion; returns a
        :class:`~repro.stats.report.RunResult`."""
        if self._ran:
            raise SimulationError("Machine.run may only be called once")
        self._ran = True
        for proc in self.processors:
            proc.start()
        self.sim.run()
        unfinished = [p.node for p in self.processors if not p.finished]
        if unfinished:
            raise SimulationError(f"processors never finished: {unfinished}")
        if self.instrument is not None:
            # Read-only by contract: consumer layers audit the quiesced
            # machine here (instrumented runs stay bit-identical to bare).
            self.instrument.on_quiesce(self)
        finish_times = [proc.finish_time for proc in self.processors]
        return RunResult(
            label=self.config.describe(),
            workload=self.program.name,
            exec_time=max(finish_times),
            per_proc_time=finish_times,
            breakdowns=[proc.breakdown for proc in self.processors],
            messages=self.counters,
            misses=self.misses,
            events_fired=self.sim.events_fired,
            dir_busy_cycles=sum(d.resource.busy_cycles for d in self.directories),
            ni_busy_cycles=sum(ni.busy_cycles for ni in self.network.interfaces),
        )


def simulate(config, program, network_cls=Network, instrument=None):
    """Convenience: build a machine, run the program, return the result."""
    return Machine(config, program, network_cls=network_cls, instrument=instrument).run()

"""Cache-side transition table, one per protocol variant.

Each row reproduces *exactly* one branch of the hand-written controller
this table replaced; the action names map 1:1 onto the controller's
bound-method dispatch table.  Rows are grouped by event, and variant
knobs add or remove whole rows rather than branching inside actions —
the table for a given variant contains only the transitions that variant
can take.

Guard names (evaluated as attributes of the dispatch context):

``frame_valid``        the block's frame is valid (an INV can empty E_A)
``dirty``              the valid copy is dirty
``pending_write``      a WC write arrived while the read was in flight
``wb_full``            the coalescing write buffer has no free entry
``tearoff_grant``      the response's ``tearoff`` flag is set
``acks_pending_grant`` the response's ``acks_pending`` flag is set (WC
                       parallel grant)
"""

from repro.coherence.events import (
    DONE,
    HIT,
    WAIT,
    CacheAction as A,
    CacheEvent as E,
    CacheState as S,
)
from repro.coherence.table import (
    DEFENSIVE,
    MULTIBLOCK,
    NORMAL,
    Transition as T,
    TransitionTable,
    rows,
)
from repro.coherence.variants import NO_BUGS, TearoffMode
from repro.config import IdentifyScheme

#: memoized tables, keyed (variant, bugs)
_CACHE_TABLES = {}


def cache_table(variant, bugs=NO_BUGS):
    key = (variant, bugs)
    table = _CACHE_TABLES.get(key)
    if table is None:
        table = build_cache_table(variant, bugs)
        _CACHE_TABLES[key] = table
    return table


def build_cache_table(variant, bugs=NO_BUGS):
    if variant.tardis:
        from repro.coherence.tardis import build_tardis_cache_table

        return build_tardis_cache_table(variant, bugs)
    t = []
    sc_drop = (A.DROP_SC_TEAROFF,) if variant.tearoff is TearoffMode.SC else ()
    t += _load_rows(variant, sc_drop)
    t += _store_rows(variant, sc_drop)
    t += _data_rows(variant)
    t += _data_ex_rows(variant)
    t += _upgrade_ack_rows(variant)
    t += _ack_done_rows(variant)
    t += _write_after_read_rows(variant)
    t += _inv_rows(variant, bugs)
    t += _si_rows(variant, bugs)
    t += _evict_rows(variant)
    if not variant.wc:
        # E_A only exists under WC's parallel grants; keep only its error
        # rows (they document that SC must never see the inputs).
        t = [row for row in t if row.state is not S.E_A or row.error is not None]
    return TransitionTable("cache", variant, t)


def _shared_states(variant):
    return (S.S, S.T) if variant.any_tearoff else (S.S,)


# ----------------------------------------------------------------------
def _load_rows(variant, sc_drop):
    t = rows(_shared_states(variant) + (S.E,), E.LOAD,
             actions=(A.READ_HIT,), result=HIT, doc="read hit on a valid copy")
    t += [
        T(S.SM_W, E.LOAD, actions=(A.READ_HIT,), result=HIT,
          kind=NORMAL if variant.wc else DEFENSIVE,
          doc="the S copy under an upgrade is still readable (SC stores "
              "block, so no load can issue under an SC upgrade)"),
        T(S.IS_D, E.LOAD, error="second read issued"),
    ]
    if variant.wc:
        t += [
            T(S.E_A, E.LOAD, guards=("frame_valid",), actions=(A.READ_HIT,),
              result=HIT, doc="granted exclusive, directory acks still draining"),
            T(S.E_A, E.LOAD, actions=(A.QUEUE_READ_WAITER,), result=WAIT,
              kind=DEFENSIVE,
              doc="an INV emptied the granted copy: wait like a read-wb"),
        ]
    t += rows((S.IM_D, S.SM_WI), E.LOAD, actions=(A.QUEUE_READ_WAITER,),
              result=WAIT, kind=NORMAL if variant.wc else DEFENSIVE,
              doc='"read wb": wait for the outstanding write\'s data (only '
                  'WC stores are non-blocking, so only WC can load here)')
    t += [
        T(S.I, E.LOAD,
          actions=(A.COUNT_READ_MISS,) + sc_drop + (A.ALLOC_MSHR_READ, A.SEND_GETS),
          next_state=S.IS_D, result=WAIT, doc="read miss"),
    ]
    return t


def _store_rows(variant, sc_drop):
    # Blocking stores: every STORE under SC, only SYNC_STORE (lock words)
    # under WC.
    events = (E.SYNC_STORE,) if variant.wc else (E.STORE, E.SYNC_STORE)
    t = rows(S.E, events, actions=(A.WRITE_HIT,), result=DONE,
             doc="exclusive hit")
    if variant.wc:
        t += [
            T(S.E_A, E.SYNC_STORE, guards=("frame_valid",), actions=(A.WRITE_HIT,),
              result=DONE, doc="exclusive hit while the parallel grant drains"),
        ]
    transients = (S.IS_D, S.IM_D, S.SM_W, S.SM_WI) + ((S.E_A,) if variant.wc else ())
    t += rows(transients, events, error="second blocking write issued")
    t += [
        T(S.S, ev,
          actions=(A.COUNT_WRITE_MISS,) + sc_drop
          + (A.PIN_ALLOC_MSHR_UPGRADE, A.SEND_UPGRADE),
          next_state=S.SM_W, result=WAIT,
          doc="upgrade the tracked shared copy")
        for ev in events
    ]
    if variant.any_tearoff:
        t += [
            T(S.T, ev,
              actions=(A.COUNT_WRITE_MISS,) + sc_drop
              + (A.INVALIDATE_COPY, A.ALLOC_MSHR_WRITE, A.SEND_GETX),
              next_state=S.IM_D, result=WAIT,
              doc="a tear-off copy is invisible to the full map: full GETX")
            for ev in events
        ]
    t += [
        T(S.I, ev,
          actions=(A.COUNT_WRITE_MISS,) + sc_drop
          + (A.ALLOC_MSHR_WRITE, A.SEND_GETX),
          next_state=S.IM_D, result=WAIT, doc="write miss")
        for ev in events
    ]
    if not variant.wc:
        return t
    # Buffered (WC) stores.
    t += [
        T(S.E, E.STORE, actions=(A.WRITE_HIT,), result=DONE, doc="exclusive hit"),
        T(S.E_A, E.STORE, guards=("frame_valid",), actions=(A.WRITE_HIT,),
          result=DONE, doc="exclusive hit while the parallel grant drains"),
        T(S.E_A, E.STORE, actions=(A.WB_MERGE,), result=DONE, kind=DEFENSIVE,
          doc="an INV emptied the granted copy: coalesce into the entry"),
    ]
    t += rows((S.IM_D, S.SM_W, S.SM_WI), E.STORE, actions=(A.WB_MERGE,),
              result=DONE, doc="coalesce into the outstanding write's entry")
    t += [
        T(S.IS_D, E.STORE, guards=("pending_write",), actions=(A.WB_MERGE_PENDING,),
          result=DONE, kind=DEFENSIVE,
          doc="coalesce into the pending write-after-read (the in-order "
              "processor blocks on loads, so no store can issue here)"),
        T(S.IS_D, E.STORE, guards=("wb_full",), actions=(A.WB_WAIT_SPACE,),
          result=WAIT, kind=DEFENSIVE,
          doc="write buffer full: retry when an entry retires"),
        T(S.IS_D, E.STORE, actions=(A.WB_ALLOC_PENDING,), result=DONE,
          kind=DEFENSIVE,
          doc="buffer the write; upgrade after the read's fill"),
    ]
    t += rows((S.I,) + _shared_states(variant), E.STORE, guards=("wb_full",),
              actions=(A.WB_WAIT_SPACE,), result=WAIT, kind=MULTIBLOCK,
              doc="write buffer full: retry when an entry retires (needs "
                  "enough distinct blocks in flight to exhaust the buffer)")
    t += [
        T(S.S, E.STORE,
          actions=(A.COUNT_WRITE_MISS, A.WB_ALLOC, A.PIN_ALLOC_MSHR_UPGRADE,
                   A.SEND_UPGRADE),
          next_state=S.SM_W, result=DONE,
          doc="buffered upgrade of the tracked shared copy"),
    ]
    if variant.any_tearoff:
        t += [
            T(S.T, E.STORE,
              actions=(A.COUNT_WRITE_MISS, A.WB_ALLOC, A.INVALIDATE_COPY,
                       A.ALLOC_MSHR_WRITE, A.SEND_GETX),
              next_state=S.IM_D, result=DONE,
              doc="tear-off copy: the buffered write goes out as a full GETX"),
        ]
    t += [
        T(S.I, E.STORE,
          actions=(A.COUNT_WRITE_MISS, A.WB_ALLOC, A.ALLOC_MSHR_WRITE,
                   A.SEND_GETX),
          next_state=S.IM_D, result=DONE, doc="buffered write miss"),
    ]
    return t


def _data_rows(variant):
    t = []
    if variant.any_tearoff:
        t += [T(S.IS_D, E.DATA, guards=("tearoff_grant",),
                actions=(A.POP_CLOSE_MSHR, A.FILL_S), next_state=S.T,
                doc="tear-off fill: untracked shared copy")]
    t += [T(S.IS_D, E.DATA, actions=(A.POP_CLOSE_MSHR, A.FILL_S), next_state=S.S,
            doc="read miss completes")]
    t += rows((S.I,) + _shared_states(variant)
              + (S.E, S.IM_D, S.SM_W, S.SM_WI, S.E_A), E.DATA,
              error="DATA without a read MSHR")
    return t


def _data_ex_rows(variant):
    t = []
    if variant.migratory:
        t += [T(S.IS_D, E.DATA_EX, actions=(A.POP_CLOSE_MSHR, A.FILL_E_CLEAN),
                next_state=S.E,
                doc="migratory grant: a read answered with a clean exclusive copy")]
    else:
        t += [T(S.IS_D, E.DATA_EX, error="DATA_EX for a read MSHR (migratory off)")]
    t += [
        T(S.SM_W, E.DATA_EX,
          actions=(A.UNPIN, A.DROP_STALE_UPGRADE_COPY, A.RETRY_DEFERRED_FILLS,
                   A.FILL_E_DIRTY),
          next_state=S.E, kind=DEFENSIVE,
          doc="directory answered an upgrade with data while the S copy survived"),
    ]
    if variant.wc:
        t += [
            T(S.SM_WI, E.DATA_EX, guards=("acks_pending_grant",),
              actions=(A.UNPIN, A.RETRY_DEFERRED_FILLS, A.FILL_E_DIRTY),
              next_state=S.E_A,
              kind=DEFENSIVE if (variant.any_tearoff and
                                 variant.identify is IdentifyScheme.STATES)
              else NORMAL,
              doc="upgrade raced with INV; parallel re-grant, acks "
                  "outstanding (three-party race: a deferred reader must "
                  "re-share the block tracked before the upgrade replays "
                  "— under the additional-states scheme that re-grant is "
                  "always a tear-off, so the replay lands at Idle instead)"),
            T(S.IM_D, E.DATA_EX, guards=("acks_pending_grant",),
              actions=(A.FILL_E_DIRTY,), next_state=S.E_A,
              doc="WC parallel grant: exclusive now, ACK_DONE to follow"),
        ]
    t += [
        T(S.SM_WI, E.DATA_EX,
          actions=(A.UNPIN, A.RETRY_DEFERRED_FILLS, A.FILL_E_DIRTY),
          next_state=S.E,
          doc="upgrade raced with INV: the directory re-granted with data"),
        T(S.IM_D, E.DATA_EX, actions=(A.FILL_E_DIRTY,), next_state=S.E,
          doc="write miss completes"),
    ]
    t += rows((S.I,) + _shared_states(variant) + (S.E, S.E_A), E.DATA_EX,
              error="DATA_EX without an MSHR")
    return t


def _upgrade_ack_rows(variant):
    grant = (A.UNPIN, A.RETRY_DEFERRED_FILLS, A.PROMOTE_TO_EXCLUSIVE,
             A.APPLY_MSHR_WRITE, A.MARK_SI_FROM_GRANT, A.WRITE_GRANTED)
    t = []
    if variant.wc:
        t += [T(S.SM_W, E.UPGRADE_ACK, guards=("acks_pending_grant",),
                actions=grant, next_state=S.E_A,
                doc="WC parallel upgrade grant: exclusive now, ACK_DONE later")]
    t += [
        T(S.SM_W, E.UPGRADE_ACK, actions=grant, next_state=S.E,
          doc="upgrade completes in place"),
        T(S.SM_WI, E.UPGRADE_ACK,
          error="UPGRADE_ACK after its copy was invalidated"),
    ]
    t += rows((S.I,) + _shared_states(variant) + (S.E, S.IS_D, S.IM_D, S.E_A),
              E.UPGRADE_ACK, error="UPGRADE_ACK without an upgrade MSHR")
    return t


def _ack_done_rows(variant):
    if not variant.wc:
        return []
    t = [T(S.E_A, E.ACK_DONE, actions=(A.WRITE_COMPLETE,), next_state=S.E,
           doc="the directory forwarded the last invalidation ack")]
    t += rows((S.I,) + _shared_states(variant)
              + (S.E, S.IS_D, S.IM_D, S.SM_W, S.SM_WI), E.ACK_DONE,
              error="ACK_DONE without a waiting MSHR")
    return t


def _write_after_read_rows(variant):
    """A WC write buffered behind an in-flight read resumes after the fill.

    All DEFENSIVE: the in-order processor blocks on loads, so no store can
    land behind an in-flight read and the ``pending_write`` path never
    arms.  The rows document how the controller would recover if a future
    out-of-order core issued one.
    """
    if not variant.wc:
        return []
    t = [
        T(S.E, E.WRITE_AFTER_READ,
          actions=(A.APPLY_PENDING_WRITE, A.WB_RETIRE), next_state=S.E,
          kind=DEFENSIVE,
          doc="migratory grant filled exclusive: write in place"),
        T(S.S, E.WRITE_AFTER_READ,
          actions=(A.PIN_ALLOC_MSHR_UPGRADE, A.SEND_UPGRADE),
          next_state=S.SM_W, kind=DEFENSIVE,
          doc="upgrade the fresh tracked copy for the buffered write"),
    ]
    if variant.any_tearoff:
        t += [T(S.T, E.WRITE_AFTER_READ,
                actions=(A.INVALIDATE_COPY, A.ALLOC_MSHR_WRITE, A.SEND_GETX),
                next_state=S.IM_D, kind=DEFENSIVE,
                doc="tear-off fill is invisible to the map: fresh GETX")]
    return t


def _inv_rows(variant, bugs):
    t = []
    if variant.dsi and not bugs.si_notice_behind_inv_ack:
        # A self-invalidated dirty copy whose SI_NOTIFY is still queued
        # behind the flush cost: the INV's reply enters the node->home
        # lane first, so the data must ride the acknowledgment (a
        # dataless ack would complete the home's racing transaction with
        # a stale memory copy and the late notice would be dropped).
        t += [T(S.I, E.INV, guards=("si_notice_dirty",),
                actions=(A.CONSUME_SI_NOTICE, A.REPLY_INV_ACK_DATA),
                doc="dirty copy flushed but its notice not yet sent: "
                    "the data rides the ack ahead of the queued notice")]
        t += rows((S.IS_D, S.IM_D), E.INV,
                  guards=("si_notice_dirty",),
                  actions=(A.CONSUME_SI_NOTICE, A.REPLY_INV_ACK_DATA),
                  kind=DEFENSIVE,
                  doc="a request issued after the flush cannot overtake "
                      "the queued notice (one outgoing resource), so the "
                      "miss states never see this race; recover the same "
                      "way if one ever does")
    t += rows((S.I, S.IS_D, S.IM_D), E.INV,
              actions=(A.REPLY_INV_ACK,),
              doc="copy already gone: acknowledge so the directory can progress")
    t += [
        T(S.SM_WI, E.INV, actions=(A.REPLY_INV_ACK,), kind=DEFENSIVE,
          doc="a second INV for the same upgrade cannot arrive: the "
              "directory re-grants at most once per transaction"),
    ]
    t += [
        T(S.S, E.INV, actions=(A.RECORD_INV, A.INVALIDATE_COPY, A.REPLY_INV_ACK),
          next_state=S.I, doc="invalidate the tracked shared copy"),
    ]
    if variant.any_tearoff:
        t += [T(S.T, E.INV, actions=(A.RECORD_INV, A.INVALIDATE_COPY,
                                     A.REPLY_INV_ACK),
                next_state=S.I, kind=DEFENSIVE,
                doc="tear-off copies are untracked; an INV cannot target one")]
    t += [
        T(S.E, E.INV, guards=("dirty",),
          actions=(A.RECORD_INV, A.INVALIDATE_COPY, A.REPLY_INV_ACK_DATA),
          next_state=S.I, doc="owner invalidated: the dirty data rides the ack"),
        T(S.E, E.INV,
          actions=(A.RECORD_INV, A.INVALIDATE_COPY, A.REPLY_INV_ACK),
          next_state=S.I,
          kind=NORMAL if variant.migratory else DEFENSIVE,
          doc="clean (migratory) owner: the directory still holds the data"),
        T(S.SM_W, E.INV,
          actions=(A.RECORD_INV, A.INVALIDATE_COPY, A.MARK_UPGRADE_INVALIDATED,
                   A.REPLY_INV_ACK),
          next_state=S.SM_WI,
          doc="upgrade loses the race: the directory will answer with DATA_EX"),
    ]
    if variant.wc:
        t += [
            T(S.E_A, E.INV, guards=("frame_valid", "dirty"),
              actions=(A.RECORD_INV, A.INVALIDATE_COPY, A.REPLY_INV_ACK_DATA),
              next_state=S.E_A, kind=DEFENSIVE,
              doc="per-pair FIFO delivers ACK_DONE before any later INV"),
            T(S.E_A, E.INV, guards=("frame_valid",),
              actions=(A.RECORD_INV, A.INVALIDATE_COPY, A.REPLY_INV_ACK),
              next_state=S.E_A, kind=DEFENSIVE,
              doc="per-pair FIFO delivers ACK_DONE before any later INV"),
            T(S.E_A, E.INV, actions=(A.REPLY_INV_ACK,), next_state=S.E_A,
              kind=DEFENSIVE,
              doc="the granted copy already left again; acknowledge only"),
        ]
    return t


def _si_rows(variant, bugs):
    t = []
    if variant.dsi:
        if variant.any_tearoff:
            t += [T(S.T, E.SI_SYNC, actions=(A.SI_SYNC_SILENT,), next_state=S.I,
                    doc="tear-off copies die silently (flash clear)")]
        t += [
            T(S.S, E.SI_SYNC, actions=(A.SI_SYNC_NOTIFY,), next_state=S.I,
              kind=DEFENSIVE if variant.any_tearoff else NORMAL,
              doc="tracked marked shared copy: self-invalidate and notify "
                  "the home (with tear-off, marked read fills land in T, "
                  "so a marked S copy never forms)"),
            T(S.E, E.SI_SYNC, actions=(A.SI_SYNC_NOTIFY,), next_state=S.I,
              doc="marked exclusive copy: self-invalidate and notify the home"),
        ]
        if variant.fifo:
            t += _si_overflow_rows(variant, bugs)
    if variant.tearoff is TearoffMode.SC:
        t += [
            T(S.T, E.SC_DROP, actions=(A.SC_DROP_TEAROFF,), next_state=S.I,
              doc="Scheurich's condition: drop the tear-off copy at the miss"),
            T(S.I, E.SC_DROP, kind=DEFENSIVE,
              doc="the remembered tear-off copy already left the cache"),
        ]
    return t


def _si_overflow_rows(variant, bugs):
    t = []
    if variant.any_tearoff:
        t += [T(S.T, E.SI_OVERFLOW, actions=(A.SI_EARLY_SILENT,), next_state=S.I,
                doc="FIFO overflow victim: tear-off dies silently")]
    t += [
        T(S.S, E.SI_OVERFLOW, actions=(A.SI_EARLY_NOTIFY,), next_state=S.I,
          doc="FIFO overflow victim: self-invalidate early, notify the home"),
        T(S.E, E.SI_OVERFLOW, actions=(A.SI_EARLY_NOTIFY,), next_state=S.I,
          kind=MULTIBLOCK,
          doc="overflow victim in E: another block's marked fill pushed it out"),
        T(S.I, E.SI_OVERFLOW, kind=DEFENSIVE,
          doc="stale FIFO entry: the copy already left"),
        T(S.IS_D, E.SI_OVERFLOW, kind=DEFENSIVE,
          doc="stale FIFO entry: no valid copy to invalidate"),
        T(S.SM_W, E.SI_OVERFLOW,
          doc="the pinned upgrade copy is exempt from early invalidation"),
        T(S.SM_WI, E.SI_OVERFLOW, kind=DEFENSIVE,
          doc="stale FIFO entry: the upgrade's copy is already gone"),
    ]
    if bugs.fifo_overflow_ignores_mshr:
        # Historical race (fixed in the FIFO-overflow PR): the overflow
        # victim was invalidated even with a transaction in flight,
        # yanking the DATA_EX fill that triggered the overflow via a
        # stale FIFO entry for the same tag.
        t += [T(S.IM_D, E.SI_OVERFLOW, actions=(A.SI_EARLY_NOTIFY,),
                next_state=S.I,
                doc="BUG: early-invalidate under an in-flight write miss")]
        if variant.wc:
            t += [T(S.E_A, E.SI_OVERFLOW, actions=(A.SI_EARLY_NOTIFY,),
                    next_state=S.E_A,
                    doc="BUG: early-invalidate under a pending parallel grant")]
    else:
        t += [
            T(S.IM_D, E.SI_OVERFLOW,
              doc="fix: keep the copy while its transaction is in flight; "
                  "the s bit stays set, so it still dies at the next sync"),
        ]
        if variant.wc:
            t += [T(S.E_A, E.SI_OVERFLOW, kind=DEFENSIVE,
                    doc="fix: keep the granted copy until ACK_DONE lands")]
    return t


def _evict_rows(variant):
    t = []
    if variant.any_tearoff:
        t += [T(S.T, E.EVICT, actions=(A.EVICT_COUNT,),
                doc="untracked victim vanishes silently")]
    t += [
        T(S.S, E.EVICT, actions=(A.EVICT_COUNT, A.EVICT_REPL),
          doc="clean shared victim: notify the home (REPL)"),
        T(S.E, E.EVICT, guards=("dirty",), actions=(A.EVICT_COUNT, A.EVICT_WB),
          doc="dirty victim: write back"),
        T(S.E, E.EVICT, actions=(A.EVICT_COUNT, A.EVICT_REPL),
          kind=NORMAL if variant.migratory else DEFENSIVE,
          doc="clean (migratory) exclusive victim"),
    ]
    return t

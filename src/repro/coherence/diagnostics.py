"""Shared deadlock diagnostics for the two coherence controllers.

Both controllers answer the engine's "why are we stuck?" question the
same way: dump every outstanding transaction with its *symbolic* protocol
state (the table-driven :mod:`repro.coherence.events` names, not raw
implementation fields), so a deadlock report reads like a row of the
protocol specification.
"""


def cache_diagnostic(ctrl):
    """Outstanding work at a cache controller, or None if quiescent."""
    if ctrl.mshrs:
        entries = ", ".join(
            f"blk{block}:{ctrl.symbolic_state(block).value}"
            for block in list(ctrl.mshrs)[:8]
        )
        return f"cache{ctrl.node}: outstanding MSHRs ({entries})"
    if ctrl.write_buffer is not None and not ctrl.write_buffer.empty:
        return f"cache{ctrl.node}: write buffer not drained"
    return None


def directory_diagnostic(ctrl):
    """Outstanding work at a directory controller, or None if quiescent."""
    busy = [(block, entry) for block, entry in ctrl.entries.items() if entry.busy]
    if not busy:
        return None
    entries = ", ".join(
        f"blk{block}:{ctrl.symbolic_state(block).value}"
        + (
            f"(pending={sorted(entry.txn.pending_inv)}"
            f"{', waiting_wb' if entry.txn.waiting_wb else ''})"
            if entry.txn is not None
            else ""
        )
        for block, entry in busy[:8]
    )
    return f"dir{ctrl.node}: busy transactions ({entries})"

"""Tardis transition tables: leased logical timestamps (Yu & Devadas,
PACT'15) on the same table engine that drives the DSI variants.

The protocol replaces the full-map sharer tracking with two logical
timestamps per block — ``wts`` (when it was last written) and ``rts``
(until when it may be read) — plus a per-node program timestamp ``pts``:

* a read *leases* the block: the home returns data with
  ``rts = max(rts, max(pts, wts) + lease)`` and the copy stays readable
  while ``pts <= rts``;
* a write *jumps* time past every outstanding lease:
  ``wts' = max(pts, rts + 1)``, so leased readers keep observing the old
  value only at logical times *before* the write — which is
  sequentially consistent in logical time;
* an expired lease (``pts > rts``) is a **free self-invalidation**: the
  copy dies without an INV, an ack, or any message at all, and the next
  read simply renews through the home;
* exclusive ownership moves the freshest ``wts``/``rts`` (and data) into
  the owner's cache; when another node needs the block the home asks the
  owner for a timestamped writeback (``WB_REQ`` → ``WB``) instead of
  invalidating it.

Consequently the table has **no INV, no INV_ACK, no parallel-grant
machinery, no tear-off and no identification scheme** — self-invalidation
is the timestamp algebra itself.  Shared copies are evicted and expire
silently (the home tracks no sharers), so the only notification kind
left is the owner's writeback.

Cache-side guard names (attributes of the dispatch context):

``lease_expired``   the valid leased copy is no longer readable
                    (``pts > frame.rts``)
``pending_write``, ``wb_full``  as in the base table (WC write buffer)

Directory-side guard names:

``owner_is_requester``  the exclusive owner re-requests (late-WB race)
``from_owner``          the writeback's source is the recorded owner
``requester_current``   an UPGRADE presented ``wts`` equal to the memory
                        copy's — exclusivity can be granted without data
"""

from repro.coherence.events import (
    DONE,
    HIT,
    WAIT,
    CacheAction as CA,
    CacheEvent as CE,
    CacheState as CS,
    DirAction as DA,
    DirEvent as DE,
    DirState as DS,
)
from repro.coherence.table import (
    DEFENSIVE,
    MULTIBLOCK,
    NORMAL,
    Transition as T,
    TransitionTable,
    rows,
)

#: Cache states a Tardis cache can occupy (no tear-off T, no SM_WI — an
#: upgrade can never be invalidated underneath — and no E_A — grants
#: never wait on invalidation acks).
CACHE_STATES = (CS.I, CS.S, CS.E, CS.IS_D, CS.IM_D, CS.SM_W)

#: Directory states: memory owns (IDLE, leases outstanding or not), a
#: cache owns (EXCL), or the home waits for the owner's writeback (B_WB).
DIR_STATES = (DS.IDLE, DS.EXCL, DS.B_WB)


# ----------------------------------------------------------------------
# Cache side
# ----------------------------------------------------------------------
def build_tardis_cache_table(variant, bugs):
    t = []
    t += _load_rows(variant)
    t += _store_rows(variant)
    t += _response_rows(variant)
    t += _wb_req_rows(variant)
    t += _evict_rows(variant)
    # The whole point: no invalidations ever arrive.
    t += rows(CACHE_STATES, CE.INV, error="INV under Tardis (leases expire; "
              "the home never invalidates)")
    t += rows(CACHE_STATES, CE.ACK_DONE,
              error="ACK_DONE under Tardis (no parallel grants)")
    return TransitionTable("cache", variant, t)


def _load_rows(variant):
    t = [
        T(CS.S, CE.LOAD, guards=("lease_expired",),
          actions=(CA.COUNT_READ_MISS, CA.LEASE_EXPIRE_SI, CA.ALLOC_MSHR_READ,
                   CA.SEND_GETS),
          next_state=CS.IS_D, result=WAIT,
          doc="expired lease: free self-invalidation, renew through the home"),
        T(CS.S, CE.LOAD, actions=(CA.TARDIS_READ_HIT,), result=HIT,
          doc="leased hit (pts <= rts); pts catches up to wts"),
        T(CS.E, CE.LOAD, actions=(CA.TARDIS_READ_HIT,), result=HIT,
          doc="the owner's copy never expires"),
        T(CS.SM_W, CE.LOAD, guards=("lease_expired",),
          actions=(CA.QUEUE_READ_WAITER,), result=WAIT,
          kind=NORMAL if variant.wc else DEFENSIVE,
          doc="the pinned upgrade copy's lease ran out: read after the grant"),
        T(CS.SM_W, CE.LOAD, actions=(CA.TARDIS_READ_HIT,), result=HIT,
          kind=NORMAL if variant.wc else DEFENSIVE,
          doc="the leased copy under an upgrade is still readable (SC "
              "stores block, so no load can issue under an SC upgrade)"),
        T(CS.IS_D, CE.LOAD, error="second read issued"),
        T(CS.IM_D, CE.LOAD, actions=(CA.QUEUE_READ_WAITER,), result=WAIT,
          kind=NORMAL if variant.wc else DEFENSIVE,
          doc='"read wb": wait for the outstanding write\'s data'),
        T(CS.I, CE.LOAD,
          actions=(CA.COUNT_READ_MISS, CA.ALLOC_MSHR_READ, CA.SEND_GETS),
          next_state=CS.IS_D, result=WAIT, doc="read miss"),
    ]
    return t


def _store_rows(variant):
    # Blocking stores: every STORE under SC, only SYNC_STORE under WC.
    events = (CE.SYNC_STORE,) if variant.wc else (CE.STORE, CE.SYNC_STORE)
    t = rows(CS.E, events, actions=(CA.TARDIS_WRITE_HIT,), result=DONE,
             doc="owner write: wts = rts = max(pts, rts + 1)")
    t += rows((CS.IS_D, CS.IM_D, CS.SM_W), events,
              error="second blocking write issued")
    t += [
        T(CS.S, ev,
          actions=(CA.COUNT_WRITE_MISS, CA.PIN_ALLOC_MSHR_UPGRADE,
                   CA.SEND_UPGRADE),
          next_state=CS.SM_W, result=WAIT,
          doc="upgrade, presenting the copy's wts (the home replies with "
              "data instead iff the copy is stale — lease validity is "
              "irrelevant to a write)")
        for ev in events
    ]
    t += [
        T(CS.I, ev,
          actions=(CA.COUNT_WRITE_MISS, CA.ALLOC_MSHR_WRITE, CA.SEND_GETX),
          next_state=CS.IM_D, result=WAIT, doc="write miss")
        for ev in events
    ]
    if not variant.wc:
        return t
    # Buffered (WC) stores.
    t += [
        T(CS.E, CE.STORE, actions=(CA.TARDIS_WRITE_HIT,), result=DONE,
          doc="owner write: wts = rts = max(pts, rts + 1)"),
    ]
    t += rows((CS.IM_D, CS.SM_W), CE.STORE, actions=(CA.WB_MERGE,),
              result=DONE, doc="coalesce into the outstanding write's entry")
    t += [
        T(CS.IS_D, CE.STORE, guards=("pending_write",),
          actions=(CA.WB_MERGE_PENDING,), result=DONE, kind=DEFENSIVE,
          doc="coalesce into the pending write-after-read (the in-order "
              "processor blocks on loads, so no store can issue here)"),
        T(CS.IS_D, CE.STORE, guards=("wb_full",), actions=(CA.WB_WAIT_SPACE,),
          result=WAIT, kind=DEFENSIVE,
          doc="write buffer full: retry when an entry retires"),
        T(CS.IS_D, CE.STORE, actions=(CA.WB_ALLOC_PENDING,), result=DONE,
          kind=DEFENSIVE,
          doc="buffer the write; upgrade after the read's fill"),
    ]
    t += rows((CS.I, CS.S), CE.STORE, guards=("wb_full",),
              actions=(CA.WB_WAIT_SPACE,), result=WAIT, kind=MULTIBLOCK,
              doc="write buffer full: retry when an entry retires (needs "
                  "enough distinct blocks in flight to exhaust the buffer)")
    t += [
        T(CS.S, CE.STORE,
          actions=(CA.COUNT_WRITE_MISS, CA.WB_ALLOC, CA.PIN_ALLOC_MSHR_UPGRADE,
                   CA.SEND_UPGRADE),
          next_state=CS.SM_W, result=DONE,
          doc="buffered upgrade of the leased copy"),
        T(CS.I, CE.STORE,
          actions=(CA.COUNT_WRITE_MISS, CA.WB_ALLOC, CA.ALLOC_MSHR_WRITE,
                   CA.SEND_GETX),
          next_state=CS.IM_D, result=DONE, doc="buffered write miss"),
        T(CS.S, CE.WRITE_AFTER_READ,
          actions=(CA.PIN_ALLOC_MSHR_UPGRADE, CA.SEND_UPGRADE),
          next_state=CS.SM_W, kind=DEFENSIVE,
          doc="upgrade the fresh leased copy for the buffered write"),
    ]
    return t


def _response_rows(variant):
    t = [
        T(CS.IS_D, CE.DATA, actions=(CA.POP_CLOSE_MSHR, CA.TARDIS_FILL_S),
          next_state=CS.S,
          doc="lease granted: install with the response's wts/rts, "
              "pts = max(pts, wts)"),
    ]
    t += rows((CS.I, CS.S, CS.E, CS.IM_D, CS.SM_W), CE.DATA,
              error="DATA without a read MSHR")
    t += [
        T(CS.IS_D, CE.DATA_EX, error="DATA_EX for a read MSHR"),
        T(CS.SM_W, CE.DATA_EX,
          actions=(CA.UNPIN, CA.DROP_STALE_UPGRADE_COPY,
                   CA.RETRY_DEFERRED_FILLS, CA.TARDIS_FILL_E),
          next_state=CS.E,
          doc="the upgrade presented a stale wts (a remote write raced the "
              "lease): the home answered with fresh data"),
        T(CS.IM_D, CE.DATA_EX, actions=(CA.TARDIS_FILL_E,), next_state=CS.E,
          doc="write miss completes: wts = rts = grant timestamp, dirty"),
    ]
    t += rows((CS.I, CS.S, CS.E), CE.DATA_EX, error="DATA_EX without an MSHR")
    t += [
        T(CS.SM_W, CE.UPGRADE_ACK,
          actions=(CA.UNPIN, CA.RETRY_DEFERRED_FILLS, CA.PROMOTE_TO_EXCLUSIVE,
                   CA.TARDIS_APPLY_UPGRADE, CA.WRITE_GRANTED),
          next_state=CS.E,
          doc="the copy was current: exclusivity granted without data"),
    ]
    t += rows((CS.I, CS.S, CS.E, CS.IS_D, CS.IM_D), CE.UPGRADE_ACK,
              error="UPGRADE_ACK without an upgrade MSHR")
    return t


def _wb_req_rows(variant):
    return [
        T(CS.E, CE.WB_REQ, actions=(CA.TARDIS_OWNER_WB,), next_state=CS.I,
          doc="the home needs the block: write back data + wts/rts, drop "
              "ownership"),
        T(CS.I, CE.WB_REQ, actions=(CA.DROP_STALE_WB_REQ,),
          doc="the eviction writeback crossed the request: it is already "
              "on its way to the home"),
        T(CS.IS_D, CE.WB_REQ, actions=(CA.DROP_STALE_WB_REQ,),
          doc="ownership already given up (WB in flight), re-request "
              "deferred at the busy home"),
        T(CS.IM_D, CE.WB_REQ, actions=(CA.DROP_STALE_WB_REQ,),
          doc="ownership already given up (WB in flight), re-request "
              "deferred at the busy home"),
        T(CS.S, CE.WB_REQ, actions=(CA.DROP_STALE_WB_REQ,), kind=DEFENSIVE,
          doc="a fresh lease would have to overtake the WB_REQ on the same "
              "home->node lane (per-pair FIFO rules it out)"),
        T(CS.SM_W, CE.WB_REQ, actions=(CA.DROP_STALE_WB_REQ,), kind=DEFENSIVE,
          doc="a fresh lease would have to overtake the WB_REQ on the same "
              "home->node lane (per-pair FIFO rules it out)"),
    ]


def _evict_rows(variant):
    return [
        T(CS.S, CE.EVICT, actions=(CA.EVICT_COUNT,),
          doc="leased copies die silently: the home tracks no sharers"),
        T(CS.E, CE.EVICT, actions=(CA.EVICT_COUNT, CA.EVICT_WB_TS),
          doc="the owner writes back data + wts/rts (owners are always "
              "dirty: exclusivity is only ever granted to a write)"),
    ]


# ----------------------------------------------------------------------
# Directory side
# ----------------------------------------------------------------------
def build_tardis_dir_table(variant, bugs):
    t = [
        T(DS.B_WB, ev, actions=(DA.DEFER,),
          doc="the block's transactions serialize: queue in arrival order")
        for ev in (DE.GETS, DE.GETX, DE.UPGRADE)
    ]
    t += [
        T(DS.EXCL, DE.GETS, guards=("owner_is_requester",),
          actions=(DA.BEGIN_READ_TXN, DA.AWAIT_WB), next_state=DS.B_WB,
          kind=DEFENSIVE,
          doc="late-writeback race: the owner's WB is in flight (per-pair "
              "FIFO delivers the WB before the re-request)"),
        T(DS.EXCL, DE.GETS,
          actions=(DA.BEGIN_READ_TXN, DA.AWAIT_WB, DA.REQUEST_WB),
          next_state=DS.B_WB,
          doc="ask the owner for a timestamped writeback (no INV: the "
              "owner keeps no stale lease behind)"),
        T(DS.IDLE, DE.GETS, actions=(DA.TARDIS_GRANT_READ,),
          next_state=DS.IDLE,
          doc="lease grant: rts = max(rts, max(pts, wts) + lease); the "
              "reader is not recorded"),
    ]
    for ev in (DE.GETX, DE.UPGRADE):
        t += [
            T(DS.EXCL, ev, guards=("owner_is_requester",),
              actions=(DA.BEGIN_WRITE_TXN, DA.AWAIT_WB), next_state=DS.B_WB,
              kind=DEFENSIVE,
              doc="late-writeback race: the owner's WB is in flight "
                  "(per-pair FIFO delivers the WB before the re-request)"),
            T(DS.EXCL, ev,
              actions=(DA.BEGIN_WRITE_TXN, DA.AWAIT_WB, DA.REQUEST_WB),
              next_state=DS.B_WB,
              doc="ask the owner for a timestamped writeback, then grant"),
        ]
    t += [
        T(DS.IDLE, DE.GETX, actions=(DA.TARDIS_GRANT_WRITE,),
          next_state=DS.EXCL,
          doc="exclusive grant: wts = rts = max(pts, rts + 1) jumps past "
              "every outstanding lease"),
        T(DS.IDLE, DE.UPGRADE, guards=("requester_current",),
          actions=(DA.TARDIS_GRANT_UPGRADE,), next_state=DS.EXCL,
          doc="the upgrader's copy matches the memory copy: grant "
              "exclusivity without data"),
        T(DS.IDLE, DE.UPGRADE, actions=(DA.TARDIS_GRANT_WRITE,),
          next_state=DS.EXCL,
          doc="the upgrader's copy is stale (a later write bumped wts): "
              "answer with fresh data instead"),
    ]
    t += [
        T(DS.B_WB, DE.WB, guards=("from_owner",),
          actions=(DA.ACCEPT_OWNER_TS, DA.RESTART_WAITING_REQUEST),
          doc="the requested (or crossing) writeback arrived: replay the "
              "waiting request"),
        T(DS.B_WB, DE.WB, actions=(DA.COUNT_STALE,), next_state=DS.B_WB,
          kind=DEFENSIVE, doc="writeback from a previous ownership era"),
        T(DS.EXCL, DE.WB, guards=("from_owner",),
          actions=(DA.ACCEPT_OWNER_TS,), next_state=DS.IDLE,
          doc="the owner evicted: data + wts/rts return to memory"),
        T(DS.EXCL, DE.WB, actions=(DA.COUNT_STALE,), next_state=DS.EXCL,
          kind=DEFENSIVE, doc="writeback from a previous ownership era"),
        T(DS.IDLE, DE.WB, actions=(DA.COUNT_STALE,), next_state=DS.IDLE,
          kind=DEFENSIVE, doc="writeback from a previous ownership era"),
    ]
    # Events a Tardis system can never produce: there are no INVs (hence
    # no acks and no LAST_ACK), leased copies evict silently (no REPL)
    # and expiry is the self-invalidation (no SI_NOTIFY).
    t += rows(DIR_STATES, (DE.INV_ACK, DE.INV_ACK_DATA),
              error="invalidation ack under Tardis (no INV is ever sent)")
    t += rows(DIR_STATES, DE.REPL,
              error="REPL under Tardis (leased copies evict silently)")
    t += rows(DIR_STATES, DE.SI_NOTIFY,
              error="SI_NOTIFY under Tardis (lease expiry is silent)")
    t += rows(DIR_STATES, DE.LAST_ACK,
              error="LAST_ACK under Tardis (no ack collection)")
    return TransitionTable("directory", variant, t)

"""Protocol variants: the knob combinations the paper evaluates.

A :class:`ProtocolVariant` is the *structural* projection of a
:class:`~repro.config.SystemConfig` — exactly the knobs that change which
transitions exist, nothing that merely changes timing.  One transition
table is built per variant (and memoized), so a 32-node machine shares a
single immutable table across all its controllers.

:class:`Bugs` re-introduces historical protocol races for the state-space
checker's regression tests; production controllers always build with the
default (no bugs).
"""

import enum
from dataclasses import dataclass

from repro.config import Consistency, IdentifyScheme, SIMechanism


class TearoffMode(enum.Enum):
    OFF = "off"
    WC = "wc"  # §3.3: untracked copies under weak consistency
    SC = "sc"  # §3.3 extension: single tear-off copy, Scheurich's condition


@dataclass(frozen=True)
class Bugs:
    """Reverted historical fixes (state-space checker regression knobs).

    ``fifo_overflow_ignores_mshr``
        PR 1's race: a FIFO overflow victim was self-invalidated even when
        a transaction for the same block was still in flight — the stale
        duplicate FIFO entry yanked a just-granted DATA_EX fill.
    ``notification_consumed_as_ack``
        The pre-seed race documented in ``directory/controller.py``:
        crossing WB/SI_NOTIFY/REPL notifications were consumed as
        invalidation-acknowledgment substitutes, letting a stale INV_ACK
        alias into the next transaction.
    ``tardis_write_ignores_lease``
        Tardis model bug: a write advances ``wts`` past the previous
        ``wts`` but *not* past the outstanding read lease (``rts``), so a
        leased reader can still observe the pre-write value at a logical
        time at or after the write — exactly what the timestamp-aware
        data-value invariant exists to catch.
    ``si_notice_behind_inv_ack``
        The pre-PR-5 cache-side race behind the pinned WC + STATES +
        tear-off coherence-order violation: a sync-point flush
        invalidates frames immediately but queues the SI_NOTIFY sends
        behind the flush cost, so an INV already queued at the
        controller was acknowledged *without data* ahead of the dirty
        notice on the node->home lane.  The home completed the racing
        transaction with its stale memory copy, granted it onward (a
        tear-off copy under WC + STATES), cleared the owner, and then
        dropped the late data-carrying notice as stale — losing the
        final write.  The fix consumes the queued notice so the data
        rides the acknowledgment.
    """

    fifo_overflow_ignores_mshr: bool = False
    notification_consumed_as_ack: bool = False
    tardis_write_ignores_lease: bool = False
    si_notice_behind_inv_ack: bool = False

    def __bool__(self):
        return (
            self.fifo_overflow_ignores_mshr
            or self.notification_consumed_as_ack
            or self.tardis_write_ignores_lease
            or self.si_notice_behind_inv_ack
        )


NO_BUGS = Bugs()


@dataclass(frozen=True)
class ProtocolVariant:
    """Structural protocol knobs (everything that adds/removes transitions)."""

    wc: bool = False
    identify: IdentifyScheme = IdentifyScheme.NONE
    mechanism: SIMechanism = None  # None when DSI is off
    tearoff: TearoffMode = TearoffMode.OFF
    migratory: bool = False
    tardis: bool = False

    def __post_init__(self):
        if self.tardis:
            if self.dsi or self.tearoff is not TearoffMode.OFF or self.migratory:
                raise ValueError(
                    "tardis replaces DSI identification, tear-off and the "
                    "migratory optimization"
                )
            return
        if self.dsi and self.mechanism is None:
            raise ValueError("a DSI variant needs a self-invalidation mechanism")
        if not self.dsi and self.mechanism is not None:
            raise ValueError("mechanism is meaningless without identification")
        if self.tearoff is TearoffMode.WC and not self.wc:
            raise ValueError("tear-off blocks require weak consistency")
        if self.tearoff is TearoffMode.SC and self.wc:
            raise ValueError("sc_tearoff is the sequentially consistent variant")
        if self.tearoff is not TearoffMode.OFF and self.identify in (
            IdentifyScheme.NONE,
            IdentifyScheme.CACHE,
        ):
            raise ValueError("tear-off blocks need directory-side identification")

    # ------------------------------------------------------------------
    @property
    def dsi(self):
        return self.identify is not IdentifyScheme.NONE

    @property
    def fifo(self):
        return self.mechanism is SIMechanism.FIFO

    @property
    def any_tearoff(self):
        return self.tearoff is not TearoffMode.OFF

    @classmethod
    def from_config(cls, config):
        if config.tardis:
            return cls(wc=config.consistency is Consistency.WC, tardis=True)
        if config.tearoff:
            tearoff = TearoffMode.WC
        elif config.sc_tearoff:
            tearoff = TearoffMode.SC
        else:
            tearoff = TearoffMode.OFF
        return cls(
            wc=config.consistency is Consistency.WC,
            identify=config.identify,
            mechanism=config.si_mechanism if config.dsi_enabled else None,
            tearoff=tearoff,
            migratory=config.migratory,
        )

    def describe(self):
        """Short label, e.g. ``WC+DSI(V)+FIFO+TO`` (mirrors config.describe)."""
        label = "WC" if self.wc else "SC"
        if self.tardis:
            return label + "+TARDIS"
        if self.dsi:
            scheme = {
                IdentifyScheme.STATES: "S",
                IdentifyScheme.VERSION: "V",
                IdentifyScheme.CACHE: "C",
            }[self.identify]
            label += f"+DSI({scheme})"
            if self.fifo:
                label += "+FIFO"
            if self.any_tearoff:
                label += "+TO"
        if self.migratory:
            label += "+MIG"
        return label


def enumerate_variants(migratory=False):
    """Every valid knob combination (the ``check-protocol`` sweep).

    SC/WC × identification × mechanism × tear-off, honouring the
    :class:`~repro.config.SystemConfig` validation rules.  The mechanism
    axis collapses when identification is off (no blocks are ever marked,
    so neither mechanism has anything to do).
    """
    variants = []
    for wc in (False, True):
        for identify in IdentifyScheme:
            if identify is IdentifyScheme.NONE:
                mechanisms = (None,)
            else:
                mechanisms = (SIMechanism.SYNC_FLUSH, SIMechanism.FIFO)
            for mechanism in mechanisms:
                modes = [TearoffMode.OFF]
                if identify in (IdentifyScheme.STATES, IdentifyScheme.VERSION):
                    modes.append(TearoffMode.WC if wc else TearoffMode.SC)
                for mode in modes:
                    variants.append(
                        ProtocolVariant(
                            wc=wc,
                            identify=identify,
                            mechanism=mechanism,
                            tearoff=mode,
                            migratory=migratory,
                        )
                    )
    return variants


def tardis_variants():
    """The Tardis family (orthogonal to the DSI knob grid): SC and WC."""
    return [ProtocolVariant(wc=wc, tardis=True) for wc in (False, True)]

"""Table-driven coherence core.

The protocol's states, events and actions (:mod:`repro.coherence.events`),
the per-variant declarative transition tables
(:mod:`repro.coherence.cache_table`, :mod:`repro.coherence.dir_table`),
the table interpreter scaffolding (:mod:`repro.coherence.table`) and the
exhaustive reachable-state-space checker
(:mod:`repro.coherence.explore`).  The production controllers in
:mod:`repro.protocol.controller` and :mod:`repro.directory.controller`
execute these tables; the checker model-checks them.
"""

from repro.coherence.variants import Bugs, NO_BUGS, ProtocolVariant, TearoffMode, enumerate_variants

__all__ = [
    "Bugs",
    "NO_BUGS",
    "ProtocolVariant",
    "TearoffMode",
    "enumerate_variants",
]

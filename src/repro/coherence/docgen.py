"""Render the declarative transition tables into docs/PROTOCOL.md.

The tables in :mod:`repro.coherence.cache_table` and
:mod:`repro.coherence.dir_table` are the protocol's specification; this
module renders them to markdown so the document can never drift from the
code.  ``python -m repro.coherence.docgen`` rewrites the generated block
in place; ``tests/test_protocol_doc.py`` asserts the committed document
matches a fresh render.
"""

from pathlib import Path

from repro.coherence.cache_table import cache_table
from repro.coherence.dir_table import dir_table
from repro.coherence.table import ERROR
from repro.coherence.variants import enumerate_variants, tardis_variants

BEGIN = "<!-- BEGIN GENERATED TABLES (python -m repro.coherence.docgen) -->"
END = "<!-- END GENERATED TABLES -->"

#: The variants whose full tables are rendered: the two consistency
#: models with every DSI feature on (their tables are supersets of the
#: leaner variants' — knobs only remove rows or downgrade their kinds),
#: plus the Tardis family, whose tables are disjoint from the DSI grid.
REFERENCE_LABELS = (
    "SC+DSI(V)+FIFO+TO+MIG",
    "WC+DSI(V)+FIFO+TO+MIG",
    "SC+TARDIS",
    "WC+TARDIS",
)


def _all_variants():
    return (
        tuple(enumerate_variants(False))
        + tuple(enumerate_variants(True))
        + tuple(tardis_variants())
    )


def _by_label(label):
    for variant in _all_variants():
        if variant.describe() == label:
            return variant
    raise LookupError(f"no variant labelled {label!r}")


def _cell(text):
    return text.replace("|", "\\|").replace("\n", " ")


def _render_row(row):
    guards = ", ".join(row.guards) if row.guards else "—"
    if row.error is not None:
        effect = f"**error**: {row.error}"
        nxt = "—"
    else:
        effect = ", ".join(a.value for a in row.actions) if row.actions \
            else "—"
        nxt = row.next_state.name if row.next_state is not None else "(same)"
    note = row.doc or ""
    return (
        f"| {row.state.name} | {row.event.name} | {_cell(guards)} "
        f"| {_cell(effect)} | {nxt} | {row.kind} | {_cell(note)} |"
    )


def _render_table(table, title):
    lines = [
        f"#### {title}",
        "",
        "| state | event | guards | actions | next | kind | note |",
        "|---|---|---|---|---|---|---|",
    ]
    lines += [_render_row(row) for row in table.transitions]
    lines.append("")
    return lines


def _render_summary():
    lines = [
        "#### Variant summary",
        "",
        "| variant | cache rows | dir rows | NORMAL | error rows |",
        "|---|---|---|---|---|",
    ]
    for variant in _all_variants():
        cache = cache_table(variant)
        directory = dir_table(variant)
        rows = cache.transitions + directory.transitions
        normal = sum(1 for t in rows if t.kind == "normal")
        errors = sum(1 for t in rows if t.kind == ERROR)
        lines.append(
            f"| {variant.describe()} | {len(cache.transitions)} "
            f"| {len(directory.transitions)} | {normal} | {errors} |"
        )
    lines.append("")
    return lines


def render():
    """The full generated block, marker lines included."""
    lines = [
        BEGIN,
        "",
        "Rendered from `repro/coherence/cache_table.py` and",
        "`repro/coherence/dir_table.py` — edit those, then run",
        "`python -m repro.coherence.docgen`.  Row kinds: **normal** rows",
        "must be reached by `dsi-sim check-protocol` (CI fails",
        "otherwise); **multiblock** rows need several distinct blocks in",
        "flight, beyond the 1-block model; **defensive** rows guard",
        "against orderings the FIFO network and in-order processor",
        "cannot produce; **error** rows assert impossible inputs.",
        "",
        "These generated tables are the *single source* of the protocol:",
        "the interpreted controllers walk them row by row, and the",
        "compiled dispatch layer (`repro/coherence/compile.py`) lowers",
        "exactly the same rows into integer-indexed decision trees — a",
        "table edit changes both execution paths at once, and",
        "`python -m repro.harness.equivalence` proves they stay",
        "bit-identical (see docs/PERFORMANCE.md).",
        "",
    ]
    for label in REFERENCE_LABELS:
        variant = _by_label(label)
        lines += _render_table(
            cache_table(variant), f"Cache controller — {label}"
        )
        lines += _render_table(
            dir_table(variant), f"Directory controller — {label}"
        )
    lines += _render_summary()
    lines.append(END)
    return "\n".join(lines)


def inject(document):
    """Replace the generated block inside ``document``; raises if the
    markers are missing or out of order."""
    start = document.index(BEGIN)
    end = document.index(END) + len(END)
    if end <= start:
        raise ValueError("generated-block markers out of order")
    return document[:start] + render() + document[end:]


def default_path():
    return Path(__file__).resolve().parents[3] / "docs" / "PROTOCOL.md"


def main(path=None):
    path = Path(path) if path is not None else default_path()
    document = path.read_text(encoding="utf-8")
    updated = inject(document)
    if updated != document:
        path.write_text(updated, encoding="utf-8")
        print(f"rewrote generated tables in {path}")
    else:
        print(f"{path} already up to date")


if __name__ == "__main__":
    main()

"""Directory-side transition table, one per protocol variant.

Row-for-row transcription of the hand-written directory controller's
dispatch; see :mod:`repro.coherence.cache_table` for the conventions.

The directory's transient states are projections of the transaction
slot: ``B_WB`` (waiting for the owner's in-flight writeback), ``B_READ``
/ ``B_WRITE`` (collecting invalidation acks), ``B_WCP`` (WC parallel
grant issued, acks still draining).  ``LAST_ACK`` is an *internal* event
fired by the ``PROCESS_ACK`` action when the pending set empties; its
rows carry the deferred grant.

Guard names (attributes of the dispatch context):

``owner_is_requester``  the exclusive owner re-requests (late-WB race)
``migratory_predicted`` migratory optimization armed for this block
``tearoff_grant``       the classified response is a tear-off grant
``no_other_sharers``    no sharer besides the requester
``from_owner``          notification source is the recorded owner
``from_pending``        source is in the transaction's pending-INV set
``from_sharer``         notification source is a recorded sharer
``carries_data``        the notification returns an exclusive copy
``last_sharer``         removing the source empties the sharer map
"""

from repro.coherence.events import DirAction as A, DirEvent as E, DirState as S
from repro.coherence.table import (
    DEFENSIVE,
    NORMAL,
    Transition as T,
    TransitionTable,
    rows,
)
from repro.coherence.variants import NO_BUGS
from repro.config import IdentifyScheme

#: memoized tables, keyed (variant, bugs)
_DIR_TABLES = {}

#: the three request kinds (deferred while busy)
REQUESTS = (E.GETS, E.GETX, E.UPGRADE)
#: invalidation acknowledgments (pair 1:1 with INVs)
ACKS = (E.INV_ACK, E.INV_ACK_DATA)
#: unsolicited notifications (replacements and self-invalidations)
NOTIFICATIONS = (E.WB, E.REPL, E.SI_NOTIFY)
BUSY = (S.B_READ, S.B_WRITE, S.B_WCP, S.B_WB)
STABLE = (S.IDLE, S.SHARED, S.EXCL)


def dir_table(variant, bugs=NO_BUGS):
    key = (variant, bugs)
    table = _DIR_TABLES.get(key)
    if table is None:
        table = build_dir_table(variant, bugs)
        _DIR_TABLES[key] = table
    return table


def _defer_kind(variant, state, ev):
    if state is S.B_WB:
        # B_WB is only entered through the owner-re-request race, which
        # per-pair FIFO delivery makes unreachable (the WB arrives first).
        return DEFENSIVE
    if ev is E.UPGRADE:
        # An UPGRADE needs a tracked sharer.  B_READ transactions start
        # at Excl, where no sharers exist; under WC, shared-state writes
        # go through B_WCP, so B_WRITE also only starts at Excl.
        if state is S.B_READ or (state is S.B_WRITE and variant.wc):
            return DEFENSIVE
    return NORMAL


def build_dir_table(variant, bugs=NO_BUGS):
    if variant.tardis:
        from repro.coherence.tardis import build_tardis_dir_table

        return build_tardis_dir_table(variant, bugs)
    t = []
    t += [
        T(state, ev, actions=(A.DEFER,), kind=_defer_kind(variant, state, ev),
          doc="the block's transactions serialize: queue in arrival order")
        for state in BUSY
        for ev in REQUESTS
    ]
    t += _gets_rows(variant)
    t += _write_rows(variant)
    t += _ack_rows(variant)
    t += _last_ack_rows(variant)
    t += _notification_rows(variant, bugs)
    if not variant.wc:
        t = [row for row in t if row.state is not S.B_WCP]
    return TransitionTable("directory", variant, t)


def _shared_tearoff(variant):
    """Only the version scheme can classify a *Shared* block for a
    tear-off grant: under the additional-states scheme every marked
    shared grant is itself a tear-off, so Shared_SI is never entered."""
    return variant.any_tearoff and variant.identify is IdentifyScheme.VERSION


# ----------------------------------------------------------------------
def _gets_rows(variant):
    t = []
    if variant.migratory:
        if _shared_tearoff(variant):
            t += [T(S.SHARED, E.GETS,
                    guards=("migratory_predicted", "tearoff_grant"),
                    actions=(A.CLEAR_MIGRATORY, A.GRANT_READ_TEAROFF),
                    next_state=S.SHARED, kind=DEFENSIVE,
                    doc="migration broke; the stale-versioned reader gets "
                        "a tear-off copy")]
        t += [
            T(S.SHARED, E.GETS, guards=("migratory_predicted",),
              actions=(A.CLEAR_MIGRATORY, A.GRANT_READ_TRACKED),
              next_state=S.SHARED, kind=DEFENSIVE,
              doc="multiple readers: the migration pattern broke (every "
                  "path into Shared already clears the prediction, so "
                  "this belt-and-braces clear never fires)"),
            T(S.EXCL, E.GETS, guards=("migratory_predicted", "owner_is_requester"),
              actions=(A.BEGIN_MIGRATORY_TXN, A.AWAIT_WB), next_state=S.B_WB,
              kind=DEFENSIVE,
              doc="migratory read, owner's WB in flight: wait for it "
                  "(per-pair FIFO delivers the WB before the re-request)"),
            T(S.EXCL, E.GETS, guards=("migratory_predicted",),
              actions=(A.BEGIN_MIGRATORY_TXN, A.INV_OWNER), next_state=S.B_WRITE,
              doc="migratory read: reclaim the owner's copy, then grant "
                  "exclusive (saving the upgrade to follow)"),
            T(S.IDLE, E.GETS, guards=("migratory_predicted",),
              actions=(A.GRANT_WRITE,), next_state=S.EXCL,
              doc="migratory read of an idle block: grant exclusive directly"),
        ]
    t += [
        T(S.EXCL, E.GETS, guards=("owner_is_requester",),
          actions=(A.BEGIN_READ_TXN, A.AWAIT_WB), next_state=S.B_WB,
          kind=DEFENSIVE,
          doc="late-writeback race: the owner's WB is in flight (per-pair "
              "FIFO delivers the WB before the re-request)"),
        T(S.EXCL, E.GETS, actions=(A.BEGIN_READ_TXN, A.INV_OWNER),
          next_state=S.B_READ,
          doc="invalidate the owner; the data must come from it"),
    ]
    if _shared_tearoff(variant):
        t += [T(S.SHARED, E.GETS, guards=("tearoff_grant",),
                actions=(A.GRANT_READ_TEAROFF,), next_state=S.SHARED,
                doc="stale-versioned reader: tear-off grant, not recorded")]
    if variant.any_tearoff:
        t += [T(S.IDLE, E.GETS, guards=("tearoff_grant",),
                actions=(A.GRANT_READ_TEAROFF,), next_state=S.IDLE,
                doc="tear-off grant of an idle block: stays idle")]
    t += [
        T(S.SHARED, E.GETS, actions=(A.GRANT_READ_TRACKED,), next_state=S.SHARED,
          doc="add the requester to the full map"),
        T(S.IDLE, E.GETS, actions=(A.GRANT_READ_TRACKED,), next_state=S.SHARED,
          doc="first reader"),
    ]
    return t


def _write_rows(variant):
    t = []
    if variant.wc:
        # Parallel grant: respond now, forward one ACK_DONE later.
        shared_actions = (A.BEGIN_WRITE_TXN_SHARED, A.GRANT_WRITE_PARALLEL,
                          A.INV_SHARERS)
        next_shared = S.B_WCP
        shared_doc = "invalidate every other sharer, granting in parallel"
    else:
        shared_actions = (A.BEGIN_WRITE_TXN_SHARED, A.INV_SHARERS)
        next_shared = S.B_WRITE
        shared_doc = "invalidate every other sharer, grant after the last ack"
    for ev in (E.GETX, E.UPGRADE):
        t += [
            T(S.EXCL, ev, guards=("owner_is_requester",),
              actions=(A.BEGIN_WRITE_TXN, A.AWAIT_WB), next_state=S.B_WB,
              kind=DEFENSIVE,
              doc="late-writeback race: the owner's WB is in flight "
                  "(per-pair FIFO delivers the WB before the re-request)"),
            T(S.EXCL, ev, actions=(A.BEGIN_WRITE_TXN, A.INV_OWNER),
              next_state=S.B_WRITE,
              doc="invalidate the owner first (its data is needed)"),
        ]
        if ev is E.UPGRADE and variant.migratory:
            t += [T(S.SHARED, ev, guards=("no_other_sharers",),
                    actions=(A.DETECT_MIGRATORY, A.GRANT_WRITE),
                    next_state=S.EXCL,
                    doc="sole-sharer upgrade (the Cox-Fowler detection point)")]
        else:
            t += [T(S.SHARED, ev, guards=("no_other_sharers",),
                    actions=(A.GRANT_WRITE,), next_state=S.EXCL,
                    kind=DEFENSIVE if ev is E.GETX else NORMAL,
                    doc="the requester holds the only tracked copy"
                    if ev is E.UPGRADE else
                    "the requester holds the only tracked copy (a tracked "
                    "sharer writes via UPGRADE, and its own REPL would "
                    "arrive first on the FIFO lane, emptying the map)")]
        t += [
            T(S.SHARED, ev, actions=shared_actions, next_state=next_shared,
              doc=shared_doc),
            T(S.IDLE, ev, actions=(A.GRANT_WRITE,), next_state=S.EXCL,
              kind=NORMAL if (
                  ev is E.GETX
                  or (variant.wc and variant.any_tearoff
                      and variant.identify is IdentifyScheme.STATES)
              ) else DEFENSIVE,
              doc="no copies: grant immediately" if ev is E.GETX else
                  "no copies: grant immediately (an invalidated upgrader's "
                  "deferred request can replay at Idle when the additional-"
                  "states scheme re-grants the block as a tear-off; "
                  "otherwise an upgrader is tracked, and losing the copy "
                  "first turns the retry into GETX)"),
        ]
    return t


def _ack_rows(variant):
    t = rows(STABLE, ACKS,
             error="acknowledgment with no transaction in flight")
    t += rows(S.B_WB, ACKS, error="unexpected acknowledgment")
    collecting = (S.B_READ, S.B_WRITE, S.B_WCP)
    for state in collecting:
        for ev in ACKS:
            # B_WCP collects from clean sharers only, so a data-carrying
            # ack can never reach it.
            kind = DEFENSIVE if (state is S.B_WCP and ev is E.INV_ACK_DATA) \
                else NORMAL
            t += [T(state, ev, guards=("from_pending",),
                    actions=(A.PROCESS_ACK,), next_state=state, kind=kind,
                    doc="one INV accounted for; fires LAST_ACK when the "
                        "pending set empties")]
    t += rows(collecting, ACKS, error="unexpected acknowledgment")
    return t


def _last_ack_rows(variant):
    t = []
    if variant.any_tearoff:
        t += [T(S.B_READ, E.LAST_ACK, guards=("tearoff_grant",),
                actions=(A.FINISH_TXN, A.GRANT_READ_TEAROFF, A.DRAIN_DEFERRED),
                next_state=S.IDLE,
                doc="owner reclaimed; the only copy handed out is untracked "
                    "(Idle_X keeps marking subsequent requests)")]
    t += [
        T(S.B_READ, E.LAST_ACK,
          actions=(A.FINISH_TXN, A.GRANT_READ_TRACKED, A.DRAIN_DEFERRED),
          next_state=S.SHARED,
          kind=DEFENSIVE if (variant.any_tearoff
                             and variant.identify is IdentifyScheme.STATES)
          else NORMAL,
          doc="owner reclaimed: grant the deferred read (under the "
              "additional-states scheme a post-reclaim read of a "
              "just-written block always classifies as a tear-off)"),
        T(S.B_WRITE, E.LAST_ACK,
          actions=(A.FINISH_TXN, A.GRANT_WRITE, A.DRAIN_DEFERRED),
          next_state=S.EXCL,
          doc="all copies reclaimed: grant the deferred write"),
    ]
    if variant.wc:
        t += [T(S.B_WCP, E.LAST_ACK,
                actions=(A.FINISH_TXN, A.SEND_ACK_DONE, A.DRAIN_DEFERRED),
                next_state=S.EXCL,
                doc="parallel grant already out: forward the single ACK_DONE")]
    return t


def _notifications(variant):
    """The notification kinds this variant can emit (REPL and WB always;
    SI_NOTIFY only when some identification scheme marks blocks)."""
    return NOTIFICATIONS if variant.dsi else (E.WB, E.REPL)


def _crossing_kind(variant, state, ev):
    """Kind of the unguarded "apply and keep collecting" row.

    Each combination needs a node that can still emit that notification
    while the transaction collects acks: a REPL crossing an INV needs a
    clean exclusive owner (migratory) or an SC shared-state write
    transaction; an SI_NOTIFY needs a *marked tracked* copy, which the
    tear-off variants only form transiently via stale FIFO entries.
    """
    if ev is E.REPL:
        if state is S.B_READ:
            return NORMAL if variant.migratory else DEFENSIVE
        if state is S.B_WRITE:
            return NORMAL if (not variant.wc or variant.migratory) \
                else DEFENSIVE
    if state is S.B_WCP:
        if ev is E.WB:
            # B_WCP's only exclusive copy is the fresh grantee, whose
            # frame stays pinned until ACK_DONE: no WB can cross.
            return DEFENSIVE
        if ev is E.SI_NOTIFY and variant.any_tearoff and not variant.fifo:
            return DEFENSIVE
    return NORMAL


def _notification_rows(variant, bugs):
    kinds = _notifications(variant)
    t = [
        # Late-writeback wait: the owner's own notification restarts the
        # waiting request (next state decided by the replay).  B_WB is
        # DEFENSIVE throughout: entering it needs an owner re-request to
        # overtake its own writeback, which per-pair FIFO rules out.
        T(S.B_WB, ev, guards=("from_owner",),
          actions=(A.APPLY_NOTIFICATION, A.RESTART_WAITING_REQUEST),
          kind=DEFENSIVE,
          doc="the awaited writeback arrived: replay the waiting request")
        for ev in kinds
    ]
    t += rows(S.B_WB, kinds, actions=(A.APPLY_NOTIFICATION,),
              next_state=S.B_WB, kind=DEFENSIVE,
              doc="stale notification while waiting for the owner's WB")
    collecting = (S.B_READ, S.B_WRITE, S.B_WCP)
    if bugs.notification_consumed_as_ack:
        # Historical race (fixed in the seed): a crossing notification from
        # a node the transaction is waiting on was consumed as an
        # acknowledgment substitute — letting the *real* INV_ACK, still in
        # flight, alias into the block's next transaction.
        t += [
            T(state, ev, guards=("from_pending",),
              actions=(A.APPLY_NOTIFICATION, A.NOTIFICATION_AS_ACK),
              next_state=state,
              doc="BUG: crossing notification consumed as an ack substitute")
            for state in collecting
            for ev in kinds
        ]
    # Crossing notifications while collecting acks are *applied* but never
    # consumed as acknowledgment substitutes: acks pair 1:1 with INVs.
    t += [
        T(state, ev, actions=(A.APPLY_NOTIFICATION,), next_state=state,
          kind=_crossing_kind(variant, state, ev),
          doc="racing notification: apply it, keep waiting for the real acks")
        for state in collecting
        for ev in kinds
    ]
    # Stable-state rows, specialized per notification kind (a WB always
    # carries data, a REPL never does).  These are also the targets of
    # APPLY_NOTIFICATION's nested dispatch on the underlying entry state.
    t += _wb_rows(variant)
    if variant.dsi:
        t += _si_notify_rows(variant)
    t += _repl_rows(variant)
    return t


def _wb_rows(variant):
    # The stale rows are DEFENSIVE: a WB only leaves an owner in E, the
    # directory stays EXCL for that owner until the WB (or an INV's ack)
    # lands, and per-pair FIFO cannot reorder it past a later request
    # from the same node.
    return [
        T(S.EXCL, E.WB, guards=("from_owner",),
          actions=(A.ACCEPT_OWNER_DATA,), next_state=S.IDLE,
          doc="the owner's exclusive copy returns with data"),
        T(S.EXCL, E.WB, actions=(A.COUNT_STALE,), next_state=S.EXCL,
          kind=DEFENSIVE, doc="writeback from a previous ownership era"),
        T(S.SHARED, E.WB, actions=(A.COUNT_STALE,), next_state=S.SHARED,
          kind=DEFENSIVE, doc="writeback from a previous ownership era"),
        T(S.IDLE, E.WB, actions=(A.COUNT_STALE,), next_state=S.IDLE,
          kind=DEFENSIVE, doc="writeback from a previous ownership era"),
    ]


def _si_notify_rows(variant):
    # A sync flush only notifies for *marked tracked* copies.  With
    # tear-off enabled, marked read fills land in T (untracked, silent),
    # so a marked tracked S copy only forms when a stale FIFO entry
    # outlives a refill — which needs the FIFO mechanism at all.
    sharer_kind = DEFENSIVE if (variant.any_tearoff and not variant.fifo) \
        else NORMAL
    # A stale SI_NOTIFY hitting Excl is reachable only through WC's
    # parallel grants: the entry turns Excl while the write transaction
    # still collects acks, so a sharer's crossing sync notification
    # dispatches here through APPLY_NOTIFICATION.
    excl_stale_kind = NORMAL if (variant.wc and (variant.fifo
                                                 or not variant.any_tearoff)) \
        else DEFENSIVE
    t = [
        T(S.EXCL, E.SI_NOTIFY, guards=("carries_data", "from_owner"),
          actions=(A.ACCEPT_OWNER_DATA,), next_state=S.IDLE,
          doc="the owner self-invalidated a dirty copy (enters Idle_X)"),
        T(S.EXCL, E.SI_NOTIFY, guards=("carries_data",),
          actions=(A.COUNT_STALE,), next_state=S.EXCL, kind=DEFENSIVE,
          doc="dirty self-invalidation from a previous ownership era"),
        T(S.EXCL, E.SI_NOTIFY, guards=("from_owner",),
          actions=(A.DROP_CLEAN_OWNER,), next_state=S.IDLE,
          kind=NORMAL if variant.migratory else DEFENSIVE,
          doc="the owner self-invalidated a clean (migratory) copy"),
        T(S.EXCL, E.SI_NOTIFY, actions=(A.COUNT_STALE,), next_state=S.EXCL,
          kind=excl_stale_kind,
          doc="clean self-invalidation from a node that lost its copy"),
        T(S.SHARED, E.SI_NOTIFY, guards=("carries_data",),
          actions=(A.COUNT_STALE,), next_state=S.SHARED, kind=DEFENSIVE,
          doc="dirty self-invalidation from a previous ownership era"),
        T(S.SHARED, E.SI_NOTIFY, guards=("from_sharer", "last_sharer"),
          actions=(A.REMOVE_LAST_SHARER,), next_state=S.IDLE,
          kind=sharer_kind,
          doc="the last tracked copy self-invalidates (enters Idle_S)"),
        T(S.SHARED, E.SI_NOTIFY, guards=("from_sharer",),
          actions=(A.REMOVE_SHARER,), next_state=S.SHARED,
          kind=sharer_kind,
          doc="a tracked copy self-invalidates"),
        T(S.SHARED, E.SI_NOTIFY, actions=(A.COUNT_STALE,), next_state=S.SHARED,
          kind=DEFENSIVE,
          doc="self-invalidation from a node no longer in the map"),
        T(S.IDLE, E.SI_NOTIFY, actions=(A.COUNT_STALE,), next_state=S.IDLE,
          kind=DEFENSIVE,
          doc="self-invalidation for an idle block"),
    ]
    return t


def _repl_rows(variant):
    return [
        T(S.EXCL, E.REPL, guards=("from_owner",),
          actions=(A.DROP_CLEAN_OWNER,), next_state=S.IDLE,
          kind=NORMAL if variant.migratory else DEFENSIVE,
          doc="the owner evicted a clean (migratory) copy"),
        T(S.EXCL, E.REPL, actions=(A.COUNT_STALE,), next_state=S.EXCL,
          kind=NORMAL if variant.wc else DEFENSIVE,
          doc="replacement notice from a node that lost its copy (under "
              "WC a sharer's eviction can cross the parallel grant's INV "
              "and dispatch here once the entry is already Excl)"),
        T(S.SHARED, E.REPL, guards=("from_sharer", "last_sharer"),
          actions=(A.REMOVE_LAST_SHARER,), next_state=S.IDLE,
          doc="the last tracked copy is evicted"),
        T(S.SHARED, E.REPL, guards=("from_sharer",),
          actions=(A.REMOVE_SHARER,), next_state=S.SHARED,
          doc="a tracked copy is evicted"),
        T(S.SHARED, E.REPL, actions=(A.COUNT_STALE,), next_state=S.SHARED,
          kind=DEFENSIVE,
          doc="replacement notice from a node no longer in the map"),
        T(S.IDLE, E.REPL, actions=(A.COUNT_STALE,), next_state=S.IDLE,
          kind=DEFENSIVE,
          doc="replacement notice for an idle block"),
    ]

"""Build-time lowering of transition tables to integer-indexed dispatch.

:class:`~repro.coherence.table.TransitionTable` stays the single source
of truth — the state-space checker, the documentation generator and the
table tests all keep interpreting it directly.  This module lowers a
validated table, once per variant, into the structures the controllers'
hot path wants:

* a dense ``state_idx * n_events + event_idx`` cell array (list indexing,
  no ``(state, event)`` tuple hashing);
* per-cell **guard-outcome decision trees**: the interpreter's
  first-matching-row scan is pre-resolved so each distinct guard is
  evaluated at most once per dispatch, through its prebound property
  ``fget`` (no ``getattr`` string lookups), in exactly the order the
  interpreter would first touch it — guards with lazy side effects (the
  directory's classification) therefore fire at the same point in both
  engines;
* :class:`CompiledRow` leaves carrying prebound action functions and the
  precomputed ``state.value`` / ``event.value`` / next-state strings the
  observability probes and error messages need, so no enum attribute is
  read per dispatch.

``CompiledTable.decide`` raises the *same* :class:`ProtocolError`
messages as ``TransitionTable.decide`` (they are precomputed per cell),
and ``decide_interpreted`` routes through the original interpreter and
maps the chosen row back to its compiled form — the ``--no-fastpath``
escape hatch, and the reference side of the equivalence harness.
"""

from operator import attrgetter

from repro.coherence.events import CacheEvent, CacheState, DirEvent, DirState
from repro.errors import ProtocolError

#: canonical index spaces (enum declaration order)
CACHE_STATES = tuple(CacheState)
CACHE_EVENTS = tuple(CacheEvent)
DIR_STATES = tuple(DirState)
DIR_EVENTS = tuple(DirEvent)

CACHE_STATE_INDEX = {state: i for i, state in enumerate(CACHE_STATES)}
CACHE_EVENT_INDEX = {event: i for i, event in enumerate(CACHE_EVENTS)}
DIR_STATE_INDEX = {state: i for i, state in enumerate(DIR_STATES)}
DIR_EVENT_INDEX = {event: i for i, event in enumerate(DIR_EVENTS)}


class CompiledRow:
    """One lowered transition: prebound actions + precomputed strings."""

    __slots__ = ("source", "actions", "fns", "next_state", "result", "error",
                 "kind", "state_name", "event_name", "next_name", "txn_kind")

    def __init__(self, transition, action_map):
        self.source = transition
        self.actions = transition.actions
        self.fns = tuple(action_map[action] for action in transition.actions)
        self.next_state = transition.next_state
        self.result = transition.result
        self.error = transition.error
        self.kind = transition.kind
        self.state_name = transition.state.value
        self.event_name = transition.event.value
        self.next_name = (transition.next_state or transition.state).value
        self.txn_kind = None  # annotated by the directory compiler

    def __repr__(self):
        return f"CompiledRow({self.source!r})"


class _Fail:
    """Decision leaf that raises: no cell, or no guard chain matched."""

    __slots__ = ("message",)

    def __init__(self, message):
        self.message = message


def _guard_fn(ctx_cls, name):
    """Prebound guard evaluator: the property's raw fget when available
    (both controllers' contexts use lazy properties), else attrgetter."""
    attr = getattr(ctx_cls, name, None)
    if isinstance(attr, property):
        return attr.fget
    return attrgetter(name)


def _build_tree(rows, row_map, guard_fns, fail):
    """Pre-resolve one cell's guarded row scan into a decision tree.

    Nodes are ``(guard_fn, if_true, if_false)`` tuples; leaves are
    :class:`CompiledRow` (first matching row) or ``fail``.  The tree
    evaluates exactly the guards the interpreter would newly evaluate,
    in the same order: walk rows top-down, a row whose guards are all
    known-true wins, a known-false guard skips the row, and the first
    *unknown* guard of the first still-alive row becomes the next node.
    """

    def build(known):
        for row in rows:
            branch_guard = None
            failed = False
            for guard in row.guards:
                value = known.get(guard)
                if value is None:
                    branch_guard = guard
                    break
                if not value:
                    failed = True
                    break
            if failed:
                continue
            if branch_guard is None:
                return row_map[row]
            if_true = build({**known, branch_guard: True})
            if_false = build({**known, branch_guard: False})
            return (guard_fns[branch_guard], if_true, if_false)
        return fail

    return build({})


class CompiledTable:
    """Integer-indexed dispatch structures for one transition table."""

    __slots__ = ("table", "name", "variant", "states", "events",
                 "state_index", "event_index", "n_events",
                 "_cells", "_row_map")

    def __init__(self, table, states, events, ctx_cls, action_map):
        self.table = table
        self.name = table.name
        self.variant = table.variant
        self.states = tuple(states)
        self.events = tuple(events)
        self.state_index = {state: i for i, state in enumerate(self.states)}
        self.event_index = {event: i for i, event in enumerate(self.events)}
        self.n_events = len(self.events)
        self._row_map = {t: CompiledRow(t, action_map) for t in table.transitions}
        guard_names = {g for t in table.transitions for g in t.guards}
        guard_fns = {name: _guard_fn(ctx_cls, name) for name in guard_names}
        prefix = f"{table.name}[{table.variant.describe()}]"
        self._cells = []
        for state in self.states:
            for event in self.events:
                rows = table._index.get((state, event))
                if rows is None:
                    self._cells.append(_Fail(
                        f"{prefix}: no transition for event {event.value} "
                        f"in state {state.value}"
                    ))
                    continue
                fail = _Fail(
                    f"{prefix}: no guard matched for event {event.value} "
                    f"in state {state.value}"
                )
                self._cells.append(
                    _build_tree(rows, self._row_map, guard_fns, fail)
                )

    # ------------------------------------------------------------------
    def decide(self, state_idx, event_idx, ctx):
        """Hot path: list indexing + the cell's pre-resolved guard tree."""
        node = self._cells[state_idx * self.n_events + event_idx]
        while node.__class__ is tuple:
            node = node[1] if node[0](ctx) else node[2]
        if node.__class__ is _Fail:
            raise ProtocolError(node.message)
        return node

    def decide_interpreted(self, state_idx, event_idx, ctx):
        """Escape hatch: run the original interpreter
        (:meth:`TransitionTable.decide`), then hand back the chosen row's
        compiled form so the dispatch tail is identical either way."""
        row = self.table.decide(
            self.states[state_idx], self.events[event_idx], ctx
        )
        return self._row_map[row]

    # ------------------------------------------------------------------
    def row_for(self, transition):
        """The compiled form of one source row (tests/diagnostics)."""
        return self._row_map[transition]

    def rows(self):
        return tuple(self._row_map.values())


def compile_table(table, states, events, ctx_cls, action_map, annotate=None):
    """Lower ``table`` over the given state/event index spaces.

    ``ctx_cls`` supplies the guard properties, ``action_map`` the symbolic
    action -> unbound method mapping; ``annotate(transition, row)`` lets a
    controller attach precomputed per-row metadata (e.g. the directory's
    ``txn_kind`` probe label).
    """
    compiled = CompiledTable(table, states, events, ctx_cls, action_map)
    if annotate is not None:
        for transition, row in compiled._row_map.items():
            annotate(transition, row)
    return compiled

"""Reachable-state-space checker for the Tardis tables.

Interprets the *production* Tardis transition tables
(:mod:`repro.coherence.tardis`) against a small abstract machine, like
:class:`~repro.coherence.explore.Checker` does for the DSI family — but
the model carries the timestamp algebra: per-copy ``wts``/``rts``,
per-node ``pts``, per-entry directory timestamps, and the complete
**write history** of the one modelled block (which logical time each
value was written at).

Extra nondeterminism beyond the base checker's op/delivery/evict moves:

* **pts advance** — a node's program timestamp jumps past a leased
  copy's ``rts`` (abstracting accesses to *other* blocks, whose fills
  and writes drag ``pts`` forward), making lease expiry reachable.  The
  move is self-limiting: once ``pts > rts`` it is disabled until a fresh
  lease is installed, so timestamps stay bounded.

Invariants, checked in every reachable state:

* **single-writer** — at most one exclusive copy (leased shared copies
  legally coexist with the owner: they are readable only at logical
  times before the owner's write);
* **timestamp data-value** — every copy's value is exactly the value
  written at its ``wts``, and a read at logical time ``ts`` observes
  the latest write with ``wts <= ts`` (checked at every read hit and
  every fill against the write history) — the lease-aware analogue of
  the base checker's data-value invariant;
* **latest-write reachability** — the most recent write's value is
  never lost (directory, a cache frame, or a data-carrying message);
* **no-stuck-transaction** and **error rows** as in the base checker.

The :class:`~repro.coherence.variants.Bugs` knob
``tardis_write_ignores_lease`` re-introduces the one protocol mistake
the timestamp invariant exists to catch: granting a write at
``wts + 1`` instead of ``max(pts, rts + 1)`` leaves the write *inside*
an outstanding lease, so a leased reader observes the stale value at a
logical time at-or-after the write.
"""

from collections import namedtuple

from repro.coherence.events import (
    CacheEvent as CE,
    CacheState as CS,
    DirEvent as DE,
    DirState as DS,
)
from repro.coherence.explore import DIR, Checker, Violation, _W
from repro.coherence.variants import NO_BUGS

#: one in-flight message: ``ts`` piggybacks the requester's pts on a
#: request (and the cached copy's wts on an UPGRADE via ``wts``);
#: responses and writebacks carry the block's ``wts``/``rts``.
TMsg = namedtuple(
    "TMsg", ("kind", "src", "dst", "carries_data", "data", "wts", "rts", "ts")
)
TMsg.__new__.__defaults__ = (False, 0, 0, 0, 0)

TFrame = namedtuple("TFrame", ("st", "dirty", "data", "wts", "rts"))  # st 'S'|'E'
TMshr = namedtuple("TMshr", ("kind", "pending_write"))
TCache = namedtuple("TCache", ("frame", "mshr", "pts"))
TTxn = namedtuple("TTxn", ("kind", "src", "req", "waiting_wb"))
TDir = namedtuple("TDir", ("state", "owner", "wts", "rts", "data", "txn", "deferred"))

_EMPTY_CACHE = TCache(None, None, 0)
_INIT_DIR = TDir("I", None, 0, 0, 0, None, ())

_CACHE_EVENTS = {
    "DATA": CE.DATA,
    "DATA_EX": CE.DATA_EX,
    "UPGRADE_ACK": CE.UPGRADE_ACK,
    "WB_REQ": CE.WB_REQ,
}
_DIR_EVENTS = {
    "GETS": DE.GETS,
    "GETX": DE.GETX,
    "UPGRADE": DE.UPGRADE,
    "WB": DE.WB,
}
_DATA_CARRIERS = ("DATA", "DATA_EX", "WB")


class _TW(_W):
    """Working copy with the block's write history as a sixth component.

    ``writes`` is the tuple of write timestamps in order: the value
    written at ``writes[i]`` is ``i + 1`` (values are the global write
    sequence number, as in the base model), and 0 is the never-written
    initial value at logical time 0.  Write timestamps are strictly
    increasing, so the tuple doubles as a sorted index.
    """

    __slots__ = ("writes",)

    def __init__(self, state, nodes):
        caches, entry, lanes, seq, ops, writes = state
        self.caches = list(caches)
        self.dir = entry
        self.lanes = {key: list(msgs) for key, msgs in lanes}
        self.seq = seq
        self.ops = list(ops)
        self.writes = writes

    def freeze(self):
        lanes = tuple(sorted(
            (key, tuple(msgs)) for key, msgs in self.lanes.items() if msgs
        ))
        return (tuple(self.caches), self.dir, lanes, self.seq,
                tuple(self.ops), self.writes)

    # -- write-history queries -----------------------------------------
    def value_at(self, wts):
        """The value written at exactly logical time ``wts`` (0 = initial)."""
        if wts == 0:
            return 0
        try:
            return self.writes.index(wts) + 1
        except ValueError:
            return None

    def later_write(self, wts, upto):
        """The first write timestamp in ``(wts, upto]``, or None."""
        for w in self.writes:
            if wts < w <= upto:
                return w
        return None


class _CacheCtx:
    """Guard context for one Tardis cache dispatch."""

    def __init__(self, w, node, msg=None, victim=None):
        cn = w.caches[node]
        self.msg = msg
        self.victim = victim
        mshr = cn.mshr
        self.pending_write = mshr is not None and mshr.pending_write
        self.wb_full = False  # needs >1 block to fill (coalescing buffer)
        self.lease_expired = cn.frame is not None and cn.pts > cn.frame.rts


class _DirCtx:
    """Guard context for one Tardis directory dispatch."""

    def __init__(self, entry, msg):
        self.msg = msg
        self.owner_is_requester = entry.owner == msg.src
        self.from_owner = entry.owner == msg.src
        self.requester_current = msg.wts == entry.wts


class TardisChecker(Checker):
    """Breadth-first exploration of a Tardis variant's state space."""

    W = _TW

    def __init__(self, variant, bugs=NO_BUGS, nodes=2, ops=3,
                 max_states=400_000, lease=1):
        super().__init__(variant, bugs, nodes=nodes, ops=ops,
                         max_states=max_states)
        self.lease = lease

    def _init_state(self):
        return ((_EMPTY_CACHE,) * self.nodes, _INIT_DIR, (), 0, self.ops, ())

    # ------------------------------------------------------------------
    # Move enumeration
    # ------------------------------------------------------------------
    def _moves(self, state):
        caches, entry, lanes, seq, ops, writes = state
        variant = self.variant
        moves = []
        for n in range(self.nodes):
            cn = caches[n]
            mshr = cn.mshr
            blocked = mshr is not None and (
                not variant.wc or mshr.kind == "read"
            )
            if ops[n] > 0 and not blocked:
                moves.append((f"n{n}: LOAD", self._op_move(n, CE.LOAD, False)))
                moves.append((f"n{n}: STORE", self._op_move(n, CE.STORE, False)))
                if mshr is None:
                    moves.append((
                        f"n{n}: SYNC_STORE",
                        self._op_move(n, CE.SYNC_STORE, False),
                    ))
            if cn.frame is not None and mshr is None:
                moves.append((f"n{n}: evict", self._evict_move(n)))
            if cn.frame is not None and cn.frame.st == "S" \
                    and cn.pts <= cn.frame.rts:
                moves.append((f"n{n}: advance-pts", self._advance_move(n)))
        for (src, dst), msgs in lanes:
            moves.append((
                f"deliver {msgs[0].kind} {src}->{dst}",
                self._deliver_move(src, dst),
            ))
        return moves

    def _stuck_reason(self, state):
        caches, entry, lanes, seq, ops, writes = state
        return super()._stuck_reason((caches, entry, lanes, seq, ops))

    def _advance_move(self, node):
        def apply(w):
            cn = w.caches[node]
            # Past the lease by exactly one tick: enough to expire it,
            # small enough to keep the timestamp space bounded.
            self._cset(w, node, pts=cn.frame.rts + 1)
        return apply

    def _evict_move(self, node):
        def apply(w):
            victim = w.caches[node].frame
            self._cset(w, node, frame=None)
            ctx = _CacheCtx(w, node, victim=victim)
            self._crow(w, node, CS.E if victim.st == "E" else CS.S,
                       CE.EVICT, ctx)
        return apply

    def _deliver_cache(self, w, node, msg):
        self._cdispatch(w, node, _CACHE_EVENTS[msg.kind], msg=msg)

    # ------------------------------------------------------------------
    # Cache-side interpreter
    # ------------------------------------------------------------------
    def _cache_state(self, cn):
        mshr = cn.mshr
        if mshr is not None:
            if mshr.kind == "read":
                return CS.IS_D
            if mshr.kind == "write":
                return CS.IM_D
            return CS.SM_W
        if cn.frame is None:
            return CS.I
        return CS.E if cn.frame.st == "E" else CS.S

    def _cdispatch(self, w, node, event, msg=None, state=None, hint=False):
        if state is None:
            state = self._cache_state(w.caches[node])
        ctx = _CacheCtx(w, node, msg=msg)
        self._crow(w, node, state, event, ctx)

    # -- timestamp invariant helpers -----------------------------------
    def _check_copy(self, w, node, data, wts, what):
        value = w.value_at(wts)
        if value != data:
            raise Violation(
                f"timestamp data-value violated: {what} at node {node} "
                f"holds value {data} stamped wts {wts}, but the write at "
                f"wts {wts} produced {value}"
            )

    def _check_read(self, w, node, frame):
        at = max(w.caches[node].pts, frame.wts)
        if at > frame.rts:
            raise Violation(
                f"lease violated: node {node} read at logical time {at} "
                f"past the copy's rts {frame.rts}"
            )
        self._check_copy(w, node, frame.data, frame.wts, "read copy")
        later = w.later_write(frame.wts, at)
        if later is not None:
            raise Violation(
                f"timestamp data-value violated: node {node} read the "
                f"value written at wts {frame.wts} at logical time {at}, "
                f"missing the later write at wts {later} "
                f"(value {w.value_at(later)})"
            )

    def _write(self, w, node, wts, rts):
        """Commit a write at logical time ``wts``: next sequence value."""
        if w.writes and wts <= w.writes[-1]:
            raise Violation(
                f"timestamp order violated: node {node} wrote at wts {wts} "
                f"not after the previous write's wts {w.writes[-1]}"
            )
        w.seq += 1
        w.writes = w.writes + (wts,)
        self._cset(w, node,
                   frame=TFrame("E", True, w.seq, wts, rts),
                   pts=max(w.caches[node].pts, wts))

    # -- cache action models -------------------------------------------
    def _c_tardis_read_hit(self, w, node, ctx):
        frame = w.caches[node].frame
        self._check_read(w, node, frame)
        self._cset(w, node, pts=max(w.caches[node].pts, frame.wts))

    def _c_lease_expire_si(self, w, node, ctx):
        self._cset(w, node, frame=None)

    def _c_tardis_write_hit(self, w, node, ctx):
        cn = w.caches[node]
        frame = cn.frame
        self._write(w, node, max(cn.pts, frame.rts + 1),
                    max(cn.pts, frame.rts + 1))

    def _c_send_gets(self, w, node, ctx):
        w.send(TMsg("GETS", node, DIR, ts=w.caches[node].pts))

    def _c_send_getx(self, w, node, ctx):
        w.send(TMsg("GETX", node, DIR, ts=w.caches[node].pts))

    def _c_send_upgrade(self, w, node, ctx):
        cn = w.caches[node]
        w.send(TMsg("UPGRADE", node, DIR, wts=cn.frame.wts, ts=cn.pts))

    def _c_tardis_fill_s(self, w, node, ctx):
        msg = ctx.msg
        self._check_copy(w, node, msg.data, msg.wts, "lease fill")
        self._cset(w, node,
                   frame=TFrame("S", False, msg.data, msg.wts, msg.rts),
                   pts=max(w.caches[node].pts, msg.wts))

    def _c_tardis_fill_e(self, w, node, ctx):
        self._write(w, node, ctx.msg.wts, ctx.msg.rts)
        self._cset(w, node, mshr=None)

    def _c_tardis_apply_upgrade(self, w, node, ctx):
        self._write(w, node, ctx.msg.wts, ctx.msg.rts)

    def _c_write_granted(self, w, node, ctx):
        self._cset(w, node, mshr=None)

    def _c_promote_to_exclusive(self, w, node, ctx):
        pass  # the upgrade's write installs the exclusive frame

    def _c_tardis_owner_wb(self, w, node, ctx):
        frame = w.caches[node].frame
        w.send(TMsg("WB", node, DIR, carries_data=True, data=frame.data,
                    wts=frame.wts, rts=frame.rts))
        self._cset(w, node, frame=None)

    def _c_drop_stale_wb_req(self, w, node, ctx):
        pass

    def _c_evict_wb_ts(self, w, node, ctx):
        victim = ctx.victim
        w.send(TMsg("WB", node, DIR, carries_data=True, data=victim.data,
                    wts=victim.wts, rts=victim.rts))

    def _c_alloc_mshr_read(self, w, node, ctx):
        self._cset(w, node, mshr=TMshr("read", False))

    def _c_alloc_mshr_write(self, w, node, ctx):
        self._cset(w, node, mshr=TMshr("write", False))

    def _c_pin_alloc_mshr_upgrade(self, w, node, ctx):
        self._cset(w, node, mshr=TMshr("upgrade", False))

    # ------------------------------------------------------------------
    # Directory-side interpreter
    # ------------------------------------------------------------------
    def _dir_state(self, entry):
        if entry.txn is not None:
            return DS.B_WB
        return DS.EXCL if entry.state == "E" else DS.IDLE

    def _ddispatch(self, w, msg, state=None):
        entry = w.dir
        if state is None:
            state = self._dir_state(entry)
        self._drow(w, state, _DIR_EVENTS[msg.kind], _DirCtx(entry, msg))

    # -- directory action models ---------------------------------------
    def _d_begin_read_txn(self, w, ctx):
        self._dset(w, txn=TTxn("read", ctx.msg.src, ctx.msg, False))

    def _d_begin_write_txn(self, w, ctx):
        self._dset(w, txn=TTxn("write", ctx.msg.src, ctx.msg, False))

    def _d_await_wb(self, w, ctx):
        self._dset(w, txn=w.dir.txn._replace(waiting_wb=True))

    def _d_request_wb(self, w, ctx):
        w.send(TMsg("WB_REQ", DIR, w.dir.owner))

    def _d_tardis_grant_read(self, w, ctx):
        entry = w.dir
        msg = ctx.msg
        rts = max(entry.rts, max(msg.ts, entry.wts) + self.lease)
        self._dset(w, rts=rts)
        w.send(TMsg("DATA", DIR, msg.src, carries_data=True,
                    data=entry.data, wts=entry.wts, rts=rts))

    def _grant_excl(self, w, ctx, upgrade):
        entry = w.dir
        msg = ctx.msg
        if self.bugs.tardis_write_ignores_lease:
            # The reverted mistake: the write lands after the previous
            # write but *inside* outstanding read leases.
            wts = max(msg.ts, entry.wts + 1)
        else:
            wts = max(msg.ts, entry.rts + 1)
        self._dset(w, state="E", owner=msg.src, wts=wts, rts=wts)
        kind = "UPGRADE_ACK" if upgrade else "DATA_EX"
        w.send(TMsg(kind, DIR, msg.src, carries_data=kind == "DATA_EX",
                    data=entry.data, wts=wts, rts=wts))

    def _d_tardis_grant_write(self, w, ctx):
        self._grant_excl(w, ctx, upgrade=False)

    def _d_tardis_grant_upgrade(self, w, ctx):
        self._grant_excl(w, ctx, upgrade=True)

    def _d_accept_owner_ts(self, w, ctx):
        entry = w.dir
        msg = ctx.msg
        self._dset(w, data=msg.data, wts=max(entry.wts, msg.wts),
                   rts=max(entry.rts, msg.rts), owner=None, state="I")

    def _d_restart_waiting_request(self, w, ctx):
        req = w.dir.txn.req
        self._dset(w, txn=None)
        self._ddispatch(w, req)
        self._d_drain_deferred(w, ctx)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _invariants(self, w):
        exclusive = [
            n for n, cn in enumerate(w.caches)
            if cn.frame is not None and cn.frame.st == "E"
        ]
        if len(exclusive) > 1:
            return f"single-writer violated: nodes {exclusive} both exclusive"
        for n, cn in enumerate(w.caches):
            frame = cn.frame
            if frame is None:
                continue
            if frame.wts > frame.rts:
                return (
                    f"timestamp order violated: node {n} holds wts "
                    f"{frame.wts} > rts {frame.rts}"
                )
            if w.value_at(frame.wts) != frame.data:
                return (
                    f"timestamp data-value violated: node {n} holds value "
                    f"{frame.data} stamped wts {frame.wts}, but the write "
                    f"at wts {frame.wts} produced {w.value_at(frame.wts)}"
                )
            inside = w.later_write(frame.wts, frame.rts)
            if inside is not None:
                return (
                    f"timestamp data-value violated: the write at wts "
                    f"{inside} (value {w.value_at(inside)}) landed inside "
                    f"node {n}'s lease [{frame.wts}, {frame.rts}] — a read "
                    f"at logical time {inside} would miss it"
                )
        latest = w.dir.data
        for cn in w.caches:
            if cn.frame is not None:
                latest = max(latest, cn.frame.data)
        for msgs in w.lanes.values():
            for msg in msgs:
                if msg.kind in _DATA_CARRIERS and msg.carries_data:
                    latest = max(latest, msg.data)
        if latest != w.seq:
            return (
                f"data-value violated: latest write {w.seq} lost "
                f"(best reachable value {latest})"
            )
        return None

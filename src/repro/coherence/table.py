"""Declarative transition tables and their interpreter.

A :class:`TransitionTable` maps ``(state, event)`` to an ordered list of
guarded :class:`Transition` rows.  ``decide()`` returns the first row
whose guards all hold — guards are attribute names evaluated against a
*context* object (the controllers use lazy properties; the state-space
checker uses plain attributes), so the same table drives both.

Rows carry:

* ``actions`` — symbolic :class:`~repro.coherence.events.CacheAction` /
  ``DirAction`` members, executed in order by the controller's dispatch
  map;
* ``next_state`` — the declared destination (None when the destination is
  decided by a replayed request, e.g. the directory's late-writeback
  restart);
* ``result`` — the value handed back to the processor (hit/done/wait);
* ``error`` — instead of actions: reaching this row is a protocol
  violation and the interpreter raises :class:`ProtocolError`;
* ``kind`` — NORMAL rows must be reachable (the checker warns otherwise),
  DEFENSIVE rows guard against inputs the system cannot produce — message
  orderings ruled out by per-(src, dst) FIFO delivery, or request
  sequences ruled out by the in-order, load-blocking processor — and
  document how the controller would recover if a future network or core
  relaxed those guarantees; ERROR rows assert impossible inputs.

``validate()`` re-expresses the structural invariants the runtime
:class:`~repro.protocol.monitor.CoherenceMonitor` checks dynamically —
totality over declared inputs, determinism of guard chains, single-writer
destinations — as *table-level* assertions checked at build time.
"""

from repro.errors import ProtocolError

NORMAL = "normal"
#: normal behaviour, but only reachable with several distinct blocks —
#: the 1-block state-space checker does not require coverage of these.
MULTIBLOCK = "multiblock"
DEFENSIVE = "defensive"
ERROR = "error"


class Transition:
    """One guarded row of a transition table."""

    __slots__ = ("state", "event", "guards", "actions", "next_state", "result",
                 "error", "kind", "doc")

    def __init__(self, state, event, guards=(), actions=(), next_state=None,
                 result=None, error=None, kind=NORMAL, doc=""):
        self.state = state
        self.event = event
        self.guards = tuple(guards)
        self.actions = tuple(actions)
        self.next_state = next_state
        self.error = error
        self.result = result
        self.kind = ERROR if error is not None else kind
        self.doc = doc

    @property
    def key(self):
        return (self.state, self.event, self.guards)

    def matches(self, ctx):
        for guard in self.guards:
            if not getattr(ctx, guard):
                return False
        return True

    def __repr__(self):
        guard = "&".join(self.guards) or "-"
        return (
            f"Transition({self.state.value}, {self.event.value}, [{guard}] -> "
            f"{self.next_state.value if self.next_state else '·'})"
        )


class TransitionTable:
    """Immutable, validated set of transitions for one protocol variant."""

    def __init__(self, name, variant, transitions):
        self.name = name
        self.variant = variant
        self.transitions = tuple(transitions)
        self._index = {}
        for t in self.transitions:
            self._index.setdefault((t.state, t.event), []).append(t)
        self.validate()

    # ------------------------------------------------------------------
    def decide(self, state, event, ctx):
        """First matching row for (state, event) under ``ctx``'s guards."""
        rows = self._index.get((state, event))
        if rows is None:
            raise ProtocolError(
                f"{self.name}[{self.variant.describe()}]: no transition for "
                f"event {event.value} in state {state.value}"
            )
        for row in rows:
            if row.matches(ctx):
                return row
        raise ProtocolError(
            f"{self.name}[{self.variant.describe()}]: no guard matched for "
            f"event {event.value} in state {state.value}"
        )

    def rows(self, state=None, event=None):
        out = []
        for t in self.transitions:
            if state is not None and t.state is not state:
                continue
            if event is not None and t.event is not event:
                continue
            out.append(t)
        return out

    def events(self):
        return {t.event for t in self.transitions}

    def states(self):
        return {t.state for t in self.transitions}

    # ------------------------------------------------------------------
    # Structural invariants (the monitor's rules, asserted on the table)
    # ------------------------------------------------------------------
    def validate(self):
        self._assert_unique_rows()
        self._assert_deterministic_guard_chains()
        self._assert_error_rows_pure()

    def _assert_unique_rows(self):
        seen = set()
        for t in self.transitions:
            if t.key in seen:
                raise AssertionError(f"{self.name}: duplicate row {t!r}")
            seen.add(t.key)

    def _assert_deterministic_guard_chains(self):
        """Within a (state, event) cell, guards must narrow monotonically:
        once an unguarded row appears it must be the last — anything after
        it could never fire (an unreachable transition by construction)."""
        for (state, event), rows in self._index.items():
            for i, row in enumerate(rows):
                if not row.guards and i != len(rows) - 1:
                    raise AssertionError(
                        f"{self.name}: unguarded row for ({state.value}, "
                        f"{event.value}) shadows {len(rows) - 1 - i} later row(s)"
                    )

    def _assert_error_rows_pure(self):
        for t in self.transitions:
            if t.error is not None and (t.actions or t.next_state is not None):
                raise AssertionError(
                    f"{self.name}: error row {t!r} must not carry actions"
                )


class CoverageTracker:
    """Which rows fired — the checker's unreachable-transition warning."""

    def __init__(self, table):
        self.table = table
        self.fired = {}

    def hit(self, row):
        self.fired[row.key] = self.fired.get(row.key, 0) + 1

    def uncovered(self, kinds=(NORMAL,)):
        return [
            t for t in self.table.transitions
            if t.kind in kinds and t.key not in self.fired
        ]

    def covered_count(self, kinds=(NORMAL,)):
        rows = [t for t in self.table.transitions if t.kind in kinds]
        return sum(1 for t in rows if t.key in self.fired), len(rows)


def rows(state_or_states, event_or_events, *args, **kwargs):
    """Cross-product row builder: ``rows((S, T), (WB, REPL), ...)``."""
    states = state_or_states if isinstance(state_or_states, tuple) else (state_or_states,)
    events = event_or_events if isinstance(event_or_events, tuple) else (event_or_events,)
    return [
        Transition(state, event, *args, **kwargs)
        for state in states
        for event in events
    ]

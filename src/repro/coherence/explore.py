"""Exhaustive reachable-state-space checker for the coherence tables.

The checker interprets the *same* transition tables the production
controllers execute (:mod:`repro.coherence.cache_table`,
:mod:`repro.coherence.dir_table`) against a small abstract machine —
2–3 cache nodes, one block, one directory — and enumerates every
reachable configuration by breadth-first search.  Nondeterminism covers
everything the full simulator schedules by time:

* which node issues the next processor operation (LOAD / STORE /
  SYNC_STORE, up to ``ops`` per node);
* which network lane delivers its head message (lanes are per-(src, dst)
  FIFOs, exactly like the production network — no reordering within a
  pair, arbitrary interleaving across pairs);
* spontaneous capacity evictions (pressure from other blocks,
  abstracted), synchronization-point self-invalidation flushes, and SI
  FIFO overflows (another block's marked fill overflowing the FIFO,
  abstracted as a move enabled while a FIFO entry exists);
* the identification decision itself: the version / cache-history
  schemes depend on per-node state the one-block model abstracts away,
  so their ``si`` classification is explored *both* ways (a request
  carries a nondeterministic hint); the additional-states scheme is
  computed exactly from the modelled entry.

Invariants checked in every reachable state:

* **single-writer** — at most one exclusive copy; a settled exclusive
  copy (not awaiting ACK_DONE) excludes every tracked copy elsewhere
  (tear-off copies are exempt: they are invisible to the full map).
* **data-value** — the latest written value is never lost: it is held by
  the directory, a cache frame, or a data-carrying message in flight.
* **no-stuck-transaction** — every terminal state (no enabled moves) is
  quiescent: no open MSHR, no busy directory transaction, no deferred
  request, no message in flight.
* **error rows** — reaching a table row declared ``error`` (or finding
  no row at all) is a violation, with the move trace as counterexample.

Coverage: every row the tables declare ``NORMAL`` must fire in some run
(aggregated over the explored configurations); rows declared
``MULTIBLOCK`` (need several distinct blocks), ``DEFENSIVE`` (orderings
the per-pair FIFO network cannot produce) and ``ERROR`` are exempt.

The two historical races are re-detectable: building the tables with the
corresponding :class:`~repro.coherence.variants.Bugs` knob set makes the
checker find a violation (see ``tests/test_coherence_explore.py``).  The
``fifo_overflow_ignores_mshr`` bug row for ``IM_D`` is modelled as the
historical symptom — the stale FIFO entry invalidated the frame the
in-flight fill was about to land in, so the fill is lost and the miss
never completes (a stuck transaction).
"""

from collections import deque, namedtuple

from repro.coherence.cache_table import cache_table
from repro.coherence.dir_table import dir_table
from repro.coherence.events import (
    CacheEvent as CE,
    CacheState as CS,
    DirEvent as DE,
    DirState as DS,
)
from repro.coherence.table import NORMAL, CoverageTracker
from repro.coherence.variants import NO_BUGS, TearoffMode
from repro.config import IdentifyScheme
from repro.errors import ProtocolError

#: the directory's network endpoint (nodes are 0..n-1)
DIR = -1

Msg = namedtuple(
    "Msg",
    ("kind", "src", "dst", "si", "tearoff", "acks_pending", "carries_data",
     "data", "si_marked", "si_hint"),
)
Msg.__new__.__defaults__ = (False, False, False, False, 0, False, False)

_CACHE_EVENTS = {
    "DATA": CE.DATA,
    "DATA_EX": CE.DATA_EX,
    "UPGRADE_ACK": CE.UPGRADE_ACK,
    "ACK_DONE": CE.ACK_DONE,
    "INV": CE.INV,
}
_DIR_EVENTS = {
    "GETS": DE.GETS,
    "GETX": DE.GETX,
    "UPGRADE": DE.UPGRADE,
    "INV_ACK": DE.INV_ACK,
    "INV_ACK_DATA": DE.INV_ACK_DATA,
    "WB": DE.WB,
    "REPL": DE.REPL,
    "SI_NOTIFY": DE.SI_NOTIFY,
}
_DATA_CARRIERS = ("DATA", "DATA_EX", "INV_ACK_DATA", "WB", "SI_NOTIFY")

#: immutable per-node cache state: frame, mshr, FIFO entry, SC tear-off memory
Frame = namedtuple("Frame", ("st", "dirty", "si", "data"))  # st: 'S'|'T'|'E'
Mshr = namedtuple("Mshr", ("kind", "invalidated", "acks_pending",
                           "pending_write", "poisoned"))
#: ``notice``: a self-invalidation SI_NOTIFY collected at a flush but not
#: yet injected into the node->home lane (the flush cost delays the send;
#: replies to incoming messages can enter the lane ahead of it)
CacheN = namedtuple("CacheN", ("frame", "mshr", "fifo", "screm", "notice"))
Txn = namedtuple("Txn", ("kind", "src", "req", "pending", "waiting_wb",
                         "wc_parallel", "upgrade_grant", "si", "migratory_read"))
DirE = namedtuple("DirE", ("state", "owner", "sharers", "shared_si", "flavor",
                           "migratory", "last_writer", "data", "txn", "deferred"))

_EMPTY_CACHE = CacheN(None, None, False, False, None)
_INIT_DIR = DirE("I", None, frozenset(), False, "plain", False, None, 0, None, ())


class Violation(Exception):
    """An invariant or error row fired during exploration."""


class _W:
    """Mutable working copy of one model state."""

    __slots__ = ("caches", "dir", "lanes", "seq", "ops")

    def __init__(self, state, nodes):
        caches, entry, lanes, seq, ops = state
        self.caches = list(caches)  # per-node tuples are replaced wholesale
        self.dir = entry
        self.lanes = {key: list(msgs) for key, msgs in lanes}
        self.seq = seq
        self.ops = list(ops)

    def freeze(self):
        lanes = tuple(sorted(
            (key, tuple(msgs)) for key, msgs in self.lanes.items() if msgs
        ))
        return (tuple(self.caches), self.dir, lanes, self.seq, tuple(self.ops))

    def send(self, msg):
        self.lanes.setdefault((msg.src, msg.dst), []).append(msg)


class _CacheCtx:
    """Plain-attribute guard context for one cache dispatch."""

    def __init__(self, w, node, msg=None, victim=None, fill_si=False):
        frame = w.caches[node].frame
        mshr = w.caches[node].mshr
        self.msg = msg
        self.victim = victim
        self.fill_si = fill_si
        self.frame_valid = frame is not None
        self.dirty = victim.dirty if victim is not None else bool(
            frame is not None and frame.dirty
        )
        self.pending_write = mshr is not None and mshr.pending_write
        self.wb_full = False  # needs >1 block to fill (coalescing buffer)
        self.tearoff_grant = bool(msg is not None and msg.tearoff)
        self.acks_pending_grant = bool(msg is not None and msg.acks_pending)
        notice = getattr(w.caches[node], "notice", None)
        self.si_notice_dirty = notice is not None and notice.carries_data
        self.inv_data = 0


class _DirCtx:
    """Plain-attribute guard context for one directory dispatch."""

    def __init__(self, entry, msg, si=False, upgrade_grant=False, txn=None):
        self.msg = msg
        self.txn = txn
        self.si = si
        self.upgrade_grant = upgrade_grant
        self.targets = ()
        src = msg.src
        self.owner_is_requester = entry.owner == src
        self.migratory_predicted = entry.migratory
        self.tearoff_grant = si  # grant rows exist only in tear-off tables
        self.no_other_sharers = not (entry.sharers - {src})
        self.from_owner = entry.owner == src
        self.from_pending = txn is None and entry.txn is not None and \
            src in entry.txn.pending
        self.carries_data = msg.carries_data
        self.from_sharer = src in entry.sharers
        self.last_sharer = len(entry.sharers) == 1


class Checker:
    """Breadth-first exploration of one variant's reachable state space."""

    #: working-copy class (subclasses carry extra state components)
    W = _W

    def __init__(self, variant, bugs=NO_BUGS, nodes=2, ops=3,
                 max_states=400_000):
        self.variant = variant
        self.bugs = bugs
        self.nodes = nodes
        # Per-node processor-op budgets: an int gives every node the same
        # budget, a tuple sets them individually (asymmetric budgets keep
        # 3-node spaces tractable).
        self.ops = tuple(ops) if isinstance(ops, (tuple, list)) \
            else (ops,) * nodes
        if len(self.ops) != nodes:
            raise ValueError(f"ops budget {self.ops} does not match "
                             f"{nodes} nodes")
        self.max_states = max_states
        self.ctable = cache_table(variant, bugs)
        self.dtable = dir_table(variant, bugs)
        self.ccov = CoverageTracker(self.ctable)
        self.dcov = CoverageTracker(self.dtable)
        self.states = 0
        self.violation = None
        self.trace = ()

    # ------------------------------------------------------------------
    # Exploration driver
    # ------------------------------------------------------------------
    def _init_state(self):
        return (
            (_EMPTY_CACHE,) * self.nodes,
            _INIT_DIR,
            (),
            0,
            self.ops,
        )

    def run(self):
        init = self._init_state()
        seen = {init: (None, None)}
        frontier = deque([init])
        while frontier:
            state = frontier.popleft()
            moves = self._moves(state)
            if not moves:
                stuck = self._stuck_reason(state)
                if stuck:
                    self._record(state, None, seen,
                                 f"stuck transaction: {stuck}")
                    return self
                continue
            for desc, apply_fn in moves:
                w = self.W(state, self.nodes)
                try:
                    apply_fn(w)
                    err = self._invariants(w)
                    if err:
                        raise Violation(err)
                except (Violation, ProtocolError) as exc:
                    self._record(state, desc, seen, str(exc))
                    return self
                nxt = w.freeze()
                if nxt not in seen:
                    seen[nxt] = (state, desc)
                    self.states += 1
                    if self.states > self.max_states:
                        raise RuntimeError(
                            f"state-space bound exceeded "
                            f"({self.max_states} states); lower --ops"
                        )
                    frontier.append(nxt)
        return self

    def _record(self, state, desc, seen, message):
        self.violation = message
        path = [desc] if desc else []
        cur = state
        while True:
            prev, mv = seen[cur]
            if prev is None:
                break
            path.append(mv)
            cur = prev
        self.trace = tuple(reversed(path))

    def uncovered(self):
        return (self.ccov.uncovered((NORMAL,)), self.dcov.uncovered((NORMAL,)))

    # ------------------------------------------------------------------
    # Move enumeration
    # ------------------------------------------------------------------
    def _moves(self, state):
        caches, entry, lanes, seq, ops = state
        variant = self.variant
        moves = []
        hints = (False, True) if variant.identify in (
            IdentifyScheme.VERSION, IdentifyScheme.CACHE
        ) else (False,)
        for n in range(self.nodes):
            cn = caches[n]
            mshr = cn.mshr
            # A held notice blocks new processor ops: requests leave via
            # the same outgoing resource as the pending send, so nothing
            # issued after the flush can overtake the notice (only
            # *replies* to incoming messages can).
            blocked = cn.notice is not None or mshr is not None and (
                not variant.wc or mshr.kind == "read"
            )
            if ops[n] > 0 and not blocked:
                for hint in hints:
                    moves.append((
                        f"n{n}: LOAD" + (" [si]" if hint else ""),
                        self._op_move(n, CE.LOAD, hint),
                    ))
                    moves.append((
                        f"n{n}: STORE" + (" [si]" if hint else ""),
                        self._op_move(n, CE.STORE, hint),
                    ))
                    if mshr is None or (mshr.acks_pending and cn.frame):
                        moves.append((
                            f"n{n}: SYNC_STORE" + (" [si]" if hint else ""),
                            self._op_move(n, CE.SYNC_STORE, hint),
                        ))
            if variant.dsi and mshr is None and cn.frame is not None and (
                cn.frame.si or cn.frame.st == "T"
            ):
                moves.append((f"n{n}: sync-flush", self._sync_move(n)))
            if cn.frame is not None and mshr is None:
                moves.append((f"n{n}: evict", self._evict_move(n)))
            if variant.fifo and cn.fifo:
                moves.append((f"n{n}: fifo-overflow", self._overflow_move(n)))
            if cn.notice is not None:
                moves.append((f"n{n}: notice-send", self._notice_move(n)))
        for (src, dst), msgs in lanes:
            moves.append((
                f"deliver {msgs[0].kind} {src}->{dst}",
                self._deliver_move(src, dst),
            ))
        return moves

    def _stuck_reason(self, state):
        caches, entry, lanes, seq, ops = state
        for n, cn in enumerate(caches):
            if cn.mshr is not None:
                return f"node {n} MSHR ({cn.mshr.kind}) never completes"
        if entry.txn is not None:
            return "directory transaction never completes"
        if entry.deferred:
            return "deferred requests never drained"
        if lanes:
            return "messages left in flight"
        return None

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def _op_move(self, node, event, hint):
        def apply(w):
            self._cdispatch(w, node, event, hint=hint)
            w.ops[node] -= 1
        return apply

    def _sync_move(self, node):
        def apply(w):
            frame = w.caches[node].frame
            state = self._frame_state(frame)
            self._cdispatch(w, node, CE.SI_SYNC, state=state)
            w.caches[node] = w.caches[node]._replace(fifo=False)
        return apply

    def _evict_move(self, node):
        def apply(w):
            victim = w.caches[node].frame
            w.caches[node] = w.caches[node]._replace(frame=None)
            ctx = _CacheCtx(w, node, victim=victim)
            self._crow(w, node, self._frame_state(victim), CE.EVICT, ctx)
        return apply

    def _overflow_move(self, node):
        def apply(w):
            w.caches[node] = w.caches[node]._replace(fifo=False)
            self._cdispatch(w, node, CE.SI_OVERFLOW)
        return apply

    def _notice_move(self, node):
        """The delayed flush send injects the held notice into the lane."""
        def apply(w):
            notice = w.caches[node].notice
            self._cset(w, node, notice=None)
            w.send(notice)
        return apply

    def _deliver_move(self, src, dst):
        def apply(w):
            msg = w.lanes[(src, dst)].pop(0)
            if not w.lanes[(src, dst)]:
                del w.lanes[(src, dst)]
            if dst == DIR:
                self._ddispatch(w, msg)
            else:
                self._deliver_cache(w, dst, msg)
        return apply

    def _deliver_cache(self, w, node, msg):
        mshr = w.caches[node].mshr
        if msg.kind in ("DATA", "DATA_EX") and mshr is not None and mshr.poisoned:
            # The historical FIFO-overflow race: the frame this fill was
            # bound for was yanked by a stale FIFO entry — the fill lands
            # nowhere and the miss never completes.
            return
        was_read = mshr is not None and mshr.kind == "read"
        pending = mshr is not None and mshr.pending_write
        self._cdispatch(w, node, _CACHE_EVENTS[msg.kind], msg=msg)
        if was_read and msg.kind in ("DATA", "DATA_EX") and pending:
            frame = w.caches[node].frame
            self._cdispatch(w, node, CE.WRITE_AFTER_READ,
                            state=self._frame_state(frame))

    # ------------------------------------------------------------------
    # Cache-side interpreter
    # ------------------------------------------------------------------
    @staticmethod
    def _frame_state(frame):
        if frame is None:
            return CS.I
        if frame.st == "T":
            return CS.T
        if frame.st == "E":
            return CS.E
        return CS.S

    def _cache_state(self, cn):
        mshr = cn.mshr
        if mshr is not None:
            if mshr.acks_pending:
                return CS.E_A
            if mshr.kind == "read":
                return CS.IS_D
            if mshr.kind == "write":
                return CS.IM_D
            return CS.SM_WI if mshr.invalidated else CS.SM_W
        return self._frame_state(cn.frame)

    def _cdispatch(self, w, node, event, msg=None, state=None, hint=False):
        if state is None:
            state = self._cache_state(w.caches[node])
        ctx = _CacheCtx(w, node, msg=msg)
        ctx.si_hint = hint
        self._crow(w, node, state, event, ctx)

    def _crow(self, w, node, state, event, ctx):
        row = self.ctable.decide(state, event, ctx)
        self.ccov.hit(row)
        if row.error is not None:
            raise Violation(
                f"cache {node} error row: {row.error} "
                f"(state {state.value}, event {event.value})"
            )
        for action in row.actions:
            getattr(self, "_c_" + action.value)(w, node, ctx)

    # -- cache action models -------------------------------------------
    def _cset(self, w, node, **kw):
        w.caches[node] = w.caches[node]._replace(**kw)

    def _mshr_set(self, w, node, **kw):
        w.caches[node] = w.caches[node]._replace(
            mshr=w.caches[node].mshr._replace(**kw)
        )

    def _c_read_hit(self, w, node, ctx):
        pass

    def _c_queue_read_waiter(self, w, node, ctx):
        pass

    def _c_count_read_miss(self, w, node, ctx):
        pass

    def _c_count_write_miss(self, w, node, ctx):
        pass

    def _c_drop_sc_tearoff(self, w, node, ctx):
        cn = w.caches[node]
        if not cn.screm:
            return
        self._cset(w, node, screm=False)
        frame = cn.frame
        state = CS.T if frame is not None and frame.st == "T" else CS.I
        self._crow(w, node, state, CE.SC_DROP, _CacheCtx(w, node))

    def _c_alloc_mshr_read(self, w, node, ctx):
        self._cset(w, node, mshr=Mshr("read", False, False, False, False))

    def _c_alloc_mshr_write(self, w, node, ctx):
        self._cset(w, node, mshr=Mshr("write", False, False, False, False))

    def _c_pin_alloc_mshr_upgrade(self, w, node, ctx):
        self._cset(w, node, mshr=Mshr("upgrade", False, False, False, False))

    def _c_send_gets(self, w, node, ctx):
        w.send(Msg("GETS", node, DIR, si_hint=ctx.si_hint))

    def _c_send_getx(self, w, node, ctx):
        w.send(Msg("GETX", node, DIR, si_hint=ctx.si_hint))

    def _c_send_upgrade(self, w, node, ctx):
        w.send(Msg("UPGRADE", node, DIR, si_hint=ctx.si_hint))

    def _c_write_hit(self, w, node, ctx):
        w.seq += 1
        frame = w.caches[node].frame
        self._cset(w, node, frame=frame._replace(dirty=True, data=w.seq))

    def _c_wb_merge(self, w, node, ctx):
        pass  # coalesces into the outstanding write's single application

    def _c_wb_merge_pending(self, w, node, ctx):
        pass

    def _c_wb_wait_space(self, w, node, ctx):
        raise AssertionError("write buffer cannot fill in a one-block model")

    def _c_wb_alloc(self, w, node, ctx):
        pass  # the buffered value is applied by the grant/fill action

    def _c_wb_alloc_pending(self, w, node, ctx):
        self._mshr_set(w, node, pending_write=True)

    def _c_invalidate_copy(self, w, node, ctx):
        self._cset(w, node, frame=None)

    def _c_pop_close_mshr(self, w, node, ctx):
        self._cset(w, node, mshr=None)

    def _fill(self, w, node, st, dirty, ctx):
        msg = ctx.msg
        si = bool(msg.si) or (
            self.variant.identify is IdentifyScheme.CACHE and msg.si_hint
        )
        tearoff = st == "T"
        data = w.seq if dirty else msg.data
        self._cset(w, node, frame=Frame(st, dirty, si, data))
        if si and self.variant.fifo:
            self._cset(w, node, fifo=True)
        if tearoff and self.variant.tearoff is TearoffMode.SC:
            self._cset(w, node, screm=True)

    def _c_fill_s(self, w, node, ctx):
        st = "T" if ctx.msg.tearoff else "S"
        self._fill(w, node, st, False, ctx)

    def _c_fill_e_clean(self, w, node, ctx):
        self._fill(w, node, "E", False, ctx)

    def _c_fill_e_dirty(self, w, node, ctx):
        w.seq += 1  # the write that missed commits with the fill
        self._fill(w, node, "E", True, ctx)
        if ctx.msg.acks_pending:
            self._cset(w, node, mshr=Mshr("write", False, True, False, False))
        else:
            self._cset(w, node, mshr=None)

    def _c_apply_pending_write(self, w, node, ctx):
        w.seq += 1
        frame = w.caches[node].frame
        self._cset(w, node, frame=frame._replace(dirty=True, data=w.seq))

    def _c_wb_retire(self, w, node, ctx):
        pass

    def _c_unpin(self, w, node, ctx):
        pass

    def _c_drop_stale_upgrade_copy(self, w, node, ctx):
        self._cset(w, node, frame=None)

    def _c_retry_deferred_fills(self, w, node, ctx):
        pass  # deferred fills need pinned conflicts across blocks

    def _c_promote_to_exclusive(self, w, node, ctx):
        frame = w.caches[node].frame
        self._cset(w, node, frame=frame._replace(st="E"))

    def _c_apply_mshr_write(self, w, node, ctx):
        w.seq += 1
        frame = w.caches[node].frame
        self._cset(w, node, frame=frame._replace(dirty=True, data=w.seq))

    def _c_mark_si_from_grant(self, w, node, ctx):
        if ctx.msg.si:
            frame = w.caches[node].frame
            self._cset(w, node, frame=frame._replace(si=True))
            if self.variant.fifo:
                self._cset(w, node, fifo=True)

    def _c_write_granted(self, w, node, ctx):
        if ctx.msg.acks_pending:
            self._mshr_set(w, node, acks_pending=True)
        else:
            self._cset(w, node, mshr=None)

    def _c_write_complete(self, w, node, ctx):
        self._cset(w, node, mshr=None)

    def _c_record_inv(self, w, node, ctx):
        frame = w.caches[node].frame
        ctx.inv_data = frame.data if frame is not None else 0

    def _c_consume_si_notice(self, w, node, ctx):
        notice = w.caches[node].notice
        ctx.inv_data = notice.data
        self._cset(w, node, notice=None)

    def _c_mark_upgrade_invalidated(self, w, node, ctx):
        self._mshr_set(w, node, invalidated=True)

    def _c_reply_inv_ack(self, w, node, ctx):
        w.send(Msg("INV_ACK", node, DIR))

    def _c_reply_inv_ack_data(self, w, node, ctx):
        w.send(Msg("INV_ACK_DATA", node, DIR, carries_data=True,
                   data=ctx.inv_data))

    def _hold_si_notice(self, w, node, frame):
        # The flush cost delays the actual send: the notice sits at the
        # node until the explicit notice-send move fires, so replies to
        # incoming messages can enter the lane ahead of it.
        self._cset(w, node, frame=None, notice=Msg(
            "SI_NOTIFY", node, DIR, carries_data=frame.dirty,
            data=frame.data, si_marked=True,
        ))

    def _c_si_sync_silent(self, w, node, ctx):
        self._cset(w, node, frame=None)

    def _c_si_sync_notify(self, w, node, ctx):
        self._hold_si_notice(w, node, w.caches[node].frame)

    def _c_si_early_silent(self, w, node, ctx):
        self._cset(w, node, frame=None)

    def _c_si_early_notify(self, w, node, ctx):
        frame = w.caches[node].frame
        if frame is not None:
            self._hold_si_notice(w, node, frame)
        else:
            # Bug row: the stale FIFO entry names the tag of the miss in
            # flight — the frame the fill was bound for is yanked.
            w.send(Msg("SI_NOTIFY", node, DIR, si_marked=True))
            if w.caches[node].mshr is not None:
                self._mshr_set(w, node, poisoned=True)

    def _c_sc_drop_tearoff(self, w, node, ctx):
        self._cset(w, node, frame=None, screm=False)

    def _c_evict_count(self, w, node, ctx):
        pass

    def _c_evict_wb(self, w, node, ctx):
        victim = ctx.victim
        w.send(Msg("WB", node, DIR, carries_data=True, data=victim.data,
                   si_marked=victim.si))

    def _c_evict_repl(self, w, node, ctx):
        w.send(Msg("REPL", node, DIR, si_marked=ctx.victim.si))

    # ------------------------------------------------------------------
    # Directory-side interpreter
    # ------------------------------------------------------------------
    def _dir_state(self, entry):
        if entry.txn is not None:
            txn = entry.txn
            if txn.waiting_wb:
                return DS.B_WB
            if txn.wc_parallel:
                return DS.B_WCP
            if txn.kind == "read":
                return DS.B_READ
            return DS.B_WRITE
        return {"I": DS.IDLE, "S": DS.SHARED, "E": DS.EXCL}[entry.state]

    def _decide_si(self, entry, msg, is_read):
        scheme = self.variant.identify
        if scheme is IdentifyScheme.NONE or scheme is IdentifyScheme.CACHE:
            return False
        if scheme is IdentifyScheme.VERSION:
            si = msg.si_hint
        else:  # STATES: computed exactly from the modelled entry
            src = msg.src
            if is_read:
                si = (
                    (entry.state == "E" and entry.owner != src)
                    or (entry.state == "S" and entry.shared_si)
                    or (entry.state == "I" and entry.flavor in ("x", "si"))
                )
            else:
                si = (
                    entry.state == "S"
                    or (entry.state == "E" and entry.owner != src)
                    or (entry.state == "I" and (
                        entry.flavor in ("s", "si")
                        or (entry.flavor == "x" and entry.last_writer != src)
                    ))
                )
        if si and not is_read and not self.variant.wc:
            # §4.1 SC upgrade special case (sole sharer).
            if msg.kind == "UPGRADE" and entry.sharers == {msg.src}:
                si = False
        return si

    def _ddispatch(self, w, msg, state=None):
        entry = w.dir
        event = _DIR_EVENTS[msg.kind]
        if state is None:
            state = self._dir_state(entry)
        if event in (DE.GETS, DE.GETX, DE.UPGRADE):
            si = self._decide_si(entry, msg, event is DE.GETS)
            upgrade = (
                msg.kind == "UPGRADE" and entry.state == "S"
                and msg.src in entry.sharers
            )
            ctx = _DirCtx(entry, msg, si=si, upgrade_grant=upgrade)
        else:
            ctx = _DirCtx(entry, msg)
        self._drow(w, state, event, ctx)

    def _drow(self, w, state, event, ctx):
        row = self.dtable.decide(state, event, ctx)
        self.dcov.hit(row)
        if row.error is not None:
            raise Violation(
                f"directory error row: {row.error} "
                f"(state {state.value}, event {event.value}, "
                f"from node {ctx.msg.src})"
            )
        for action in row.actions:
            getattr(self, "_d_" + action.value)(w, ctx)

    # -- directory action models ---------------------------------------
    def _dset(self, w, **kw):
        w.dir = w.dir._replace(**kw)

    def _d_defer(self, w, ctx):
        self._dset(w, deferred=w.dir.deferred + (ctx.msg,))

    def _d_clear_migratory(self, w, ctx):
        self._dset(w, migratory=False)

    def _d_detect_migratory(self, w, ctx):
        entry = w.dir
        if (
            not entry.migratory
            and ctx.upgrade_grant
            and entry.last_writer not in (None, ctx.msg.src)
        ):
            self._dset(w, migratory=True)

    def _begin(self, w, ctx, kind, migratory_read=False, shared=False):
        entry = w.dir
        targets = frozenset(entry.sharers - {ctx.msg.src}) if shared else frozenset()
        ctx.targets = tuple(sorted(targets))
        ctx.txn = Txn(kind, ctx.msg.src, ctx.msg, targets, False, False,
                      ctx.upgrade_grant if shared else False, ctx.si,
                      migratory_read)
        self._dset(w, txn=ctx.txn)

    def _d_begin_read_txn(self, w, ctx):
        self._begin(w, ctx, "read")

    def _d_begin_write_txn(self, w, ctx):
        self._begin(w, ctx, "write")

    def _d_begin_migratory_txn(self, w, ctx):
        self._begin(w, ctx, "write", migratory_read=True)

    def _d_begin_write_txn_shared(self, w, ctx):
        self._begin(w, ctx, "write", shared=True)

    def _txn_set(self, w, ctx, **kw):
        ctx.txn = ctx.txn._replace(**kw)
        self._dset(w, txn=ctx.txn)

    def _d_await_wb(self, w, ctx):
        self._txn_set(w, ctx, waiting_wb=True)

    def _d_inv_owner(self, w, ctx):
        owner = w.dir.owner
        self._txn_set(w, ctx, pending=frozenset({owner}))
        w.send(Msg("INV", DIR, owner))

    def _d_inv_sharers(self, w, ctx):
        for target in ctx.targets:
            w.send(Msg("INV", DIR, target))

    def _d_grant_read_tearoff(self, w, ctx):
        entry = w.dir
        if entry.state == "E" and entry.owner is None:
            self._dset(w, state="I", flavor="x")
        w.send(Msg("DATA", DIR, ctx.msg.src, si=ctx.si, tearoff=True,
                   carries_data=True, data=w.dir.data,
                   si_hint=ctx.msg.si_hint))

    def _d_grant_read_tracked(self, w, ctx):
        entry = w.dir
        src = ctx.msg.src
        kw = {"sharers": entry.sharers | {src}}
        if entry.state != "S":
            kw.update(state="S", flavor="plain", shared_si=False)
        self._dset(w, **kw)
        if ctx.si and self.variant.identify is IdentifyScheme.STATES:
            self._dset(w, shared_si=True)
        w.send(Msg("DATA", DIR, src, si=ctx.si, carries_data=True,
                   data=w.dir.data, si_hint=ctx.msg.si_hint))

    def _grant_write(self, w, ctx, acks_pending):
        src = ctx.msg.src
        upgrade = ctx.txn.upgrade_grant if ctx.txn is not None else ctx.upgrade_grant
        self._dset(w, state="E", owner=src, sharers=frozenset(),
                   shared_si=False, flavor="plain", last_writer=src)
        kind = "UPGRADE_ACK" if upgrade else "DATA_EX"
        w.send(Msg(kind, DIR, src, si=ctx.si, acks_pending=acks_pending,
                   carries_data=kind == "DATA_EX", data=w.dir.data,
                   si_hint=ctx.msg.si_hint))

    def _d_grant_write(self, w, ctx):
        self._grant_write(w, ctx, acks_pending=False)

    def _d_grant_write_parallel(self, w, ctx):
        self._txn_set(w, ctx, wc_parallel=True)
        self._grant_write(w, ctx, acks_pending=True)

    def _d_process_ack(self, w, ctx):
        entry = w.dir
        txn = entry.txn
        src = ctx.msg.src
        txn = txn._replace(pending=txn.pending - {src})
        kw = {"txn": txn, "sharers": entry.sharers - {src}}
        if ctx.msg.carries_data:
            kw["data"] = ctx.msg.data
        elif txn.migratory_read and entry.owner == src:
            kw["migratory"] = False
        if entry.owner == src:
            kw["owner"] = None
        self._dset(w, **kw)
        if not txn.pending:
            state = self._dir_state(w.dir)
            self._drow(w, state, DE.LAST_ACK,
                       _DirCtx(w.dir, txn.req, si=txn.si, txn=txn))

    def _d_notification_as_ack(self, w, ctx):
        # Historical bug row: the crossing notification is consumed as an
        # acknowledgment substitute.
        entry = w.dir
        txn = entry.txn
        txn = txn._replace(pending=txn.pending - {ctx.msg.src})
        self._dset(w, txn=txn)
        if not txn.pending:
            state = self._dir_state(w.dir)
            self._drow(w, state, DE.LAST_ACK,
                       _DirCtx(w.dir, txn.req, si=txn.si, txn=txn))

    def _d_finish_txn(self, w, ctx):
        self._dset(w, txn=None)

    def _d_send_ack_done(self, w, ctx):
        w.send(Msg("ACK_DONE", DIR, ctx.txn.src))

    def _d_drain_deferred(self, w, ctx):
        while w.dir.deferred and w.dir.txn is None:
            msg = w.dir.deferred[0]
            self._dset(w, deferred=w.dir.deferred[1:])
            self._ddispatch(w, msg)

    def _d_apply_notification(self, w, ctx):
        entry = w.dir
        state = {"I": DS.IDLE, "S": DS.SHARED, "E": DS.EXCL}[entry.state]
        self._drow(w, state, _DIR_EVENTS[ctx.msg.kind], _DirCtx(entry, ctx.msg))

    def _d_restart_waiting_request(self, w, ctx):
        req = w.dir.txn.req
        self._dset(w, txn=None)
        self._ddispatch(w, req)
        self._d_drain_deferred(w, ctx)

    def _idle_flavor(self, msg, on_si="x"):
        if msg.kind == "SI_NOTIFY":
            return on_si
        return "si" if msg.si_marked else "plain"

    def _d_accept_owner_data(self, w, ctx):
        self._dset(w, data=ctx.msg.data, owner=None, state="I",
                   flavor=self._idle_flavor(ctx.msg))

    def _d_drop_clean_owner(self, w, ctx):
        self._dset(w, owner=None, state="I", flavor=self._idle_flavor(ctx.msg))

    def _d_remove_sharer(self, w, ctx):
        self._dset(w, sharers=w.dir.sharers - {ctx.msg.src})

    def _d_remove_last_sharer(self, w, ctx):
        self._dset(w, sharers=w.dir.sharers - {ctx.msg.src}, state="I",
                   shared_si=False, flavor=self._idle_flavor(ctx.msg, on_si="s"))

    def _d_count_stale(self, w, ctx):
        pass

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _invariants(self, w):
        exclusive = [
            n for n, cn in enumerate(w.caches)
            if cn.frame is not None and cn.frame.st == "E"
        ]
        if len(exclusive) > 1:
            return f"single-writer violated: nodes {exclusive} both exclusive"
        settled = [
            n for n in exclusive
            if not (w.caches[n].mshr is not None
                    and w.caches[n].mshr.acks_pending)
        ]
        if settled:
            others = [
                n for n, cn in enumerate(w.caches)
                if n != settled[0] and cn.frame is not None
                and cn.frame.st in ("S", "E")
            ]
            if others:
                return (
                    f"single-writer violated: node {settled[0]} exclusive "
                    f"while nodes {others} hold tracked copies"
                )
        latest = w.dir.data
        for cn in w.caches:
            if cn.frame is not None:
                latest = max(latest, cn.frame.data)
            if cn.notice is not None and cn.notice.carries_data:
                latest = max(latest, cn.notice.data)
        for msgs in w.lanes.values():
            for msg in msgs:
                if msg.kind in _DATA_CARRIERS and msg.carries_data:
                    latest = max(latest, msg.data)
        if latest != w.seq:
            return (
                f"data-value violated: latest write {w.seq} lost "
                f"(best reachable value {latest})"
            )
        return None


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
class VariantReport:
    """Result of checking one variant over several model configurations."""

    def __init__(self, variant, bugs):
        self.variant = variant
        self.bugs = bugs
        self.states = 0
        self.violation = None
        self.trace = ()
        self.uncovered_cache = ()
        self.uncovered_dir = ()

    @property
    def ok(self):
        return self.violation is None and not self.uncovered_cache \
            and not self.uncovered_dir

    def describe(self):
        return self.variant.describe()


def default_configs(variant):
    """Model configurations explored per variant: ``(nodes, ops)`` pairs.

    Two nodes with three ops each reach every NORMAL row except the
    three-party upgrade/INV race (``SM_WI`` re-granted while a deferred
    reader re-shares the block), which only WC variants have; for those
    a third node with asymmetric budgets (2, 1, 1) adds it while keeping
    the space tractable.

    Tardis variants always add the third node: the home's serialization
    queue (``B_WB`` + DEFER) only fills when a second requester races
    the owner's writeback.
    """
    if getattr(variant, "tardis", False):
        return ((2, 3), (3, (2, 1, 1)))
    configs = [(2, 3)]
    if variant.wc:
        configs.append((3, (2, 1, 1)))
    return tuple(configs)


def check_variant(variant, bugs=NO_BUGS, configs=None,
                  max_states=400_000, require_coverage=True):
    """Explore one variant across the given model configurations.

    ``configs`` is a sequence of ``(nodes, ops)`` pairs (defaulting to
    :func:`default_configs`).  Returns a :class:`VariantReport`;
    coverage is aggregated over all runs (a row is covered if any
    configuration fires it).
    """
    if configs is None:
        configs = default_configs(variant)
    if variant.tardis:
        from repro.coherence.explore_tardis import TardisChecker
        checker_cls = TardisChecker
    else:
        checker_cls = Checker
    report = VariantReport(variant, bugs)
    fired_cache = set()
    fired_dir = set()
    checker = None
    for n, ops in configs:
        checker = checker_cls(variant, bugs, nodes=n, ops=ops,
                              max_states=max_states).run()
        report.states += checker.states
        fired_cache.update(checker.ccov.fired)
        fired_dir.update(checker.dcov.fired)
        if checker.violation is not None:
            report.violation = checker.violation
            report.trace = checker.trace
            return report
    if require_coverage and checker is not None:
        report.uncovered_cache = tuple(
            t for t in checker.ctable.transitions
            if t.kind == NORMAL and t.key not in fired_cache
        )
        report.uncovered_dir = tuple(
            t for t in checker.dtable.transitions
            if t.kind == NORMAL and t.key not in fired_dir
        )
    return report

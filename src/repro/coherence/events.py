"""Typed states, events and actions of the coherence protocol.

The cache- and directory-side controllers are driven by declarative
transition tables (:mod:`repro.coherence.cache_table`,
:mod:`repro.coherence.dir_table`) built over the enums defined here.  The
enums are deliberately *symbolic*: a value names a protocol concept, not
an implementation detail, so the same tables drive the production
controllers, the documentation generator and the exhaustive state-space
checker (:mod:`repro.coherence.explore`).

Cache-side states follow the SLICC convention of naming transient states
after the transition they sit on (``IS_D`` = Invalid, going to Shared,
waiting for Data).  Stable states are derived from the frame; transient
states from the MSHR:

========  ==========================================================
``I``     no valid copy, no outstanding transaction
``S``     tracked shared copy
``T``     tear-off shared copy (untracked; self-invalidates at sync)
``E``     exclusive copy (the paper's writable/dirty "M")
``IS_D``  read miss outstanding (GETS sent, waiting for DATA)
``IM_D``  write miss outstanding (GETX sent, waiting for DATA_EX)
``SM_W``  upgrade outstanding, the S copy still valid (and pinned)
``SM_WI`` upgrade outstanding, the S copy invalidated underneath it
``E_A``   exclusive granted, waiting for the directory's ACK_DONE
          (weak consistency's parallel-invalidation grant)
========  ==========================================================

Directory-side states mirror the paper's Figure 1 plus busy transients:

=========  =========================================================
``IDLE``    no copies (flavors Idle/Idle_X/Idle_S/Idle_SI live in the
            entry's ``idle_flavor`` field; they matter only to the
            additional-states identification policy)
``SHARED``  tracked shared copies (``shared_si`` refines to Shared_SI)
``EXCL``    one exclusive owner
``B_READ``  busy: invalidating the owner to serve a read
``B_WRITE`` busy: collecting invalidation acks to serve a write
``B_WCP``   busy: WC parallel grant issued, still collecting acks
``B_WB``    busy: waiting for the owner's in-flight writeback
=========  =========================================================
"""

import enum


class CacheState(enum.Enum):
    I = "I"
    S = "S"
    T = "T"
    E = "E"
    IS_D = "IS_D"
    IM_D = "IM_D"
    SM_W = "SM_W"
    SM_WI = "SM_WI"
    E_A = "E_A"


class CacheEvent(enum.Enum):
    # Processor-initiated
    LOAD = "Load"
    STORE = "Store"
    SYNC_STORE = "SyncStore"
    # Network responses / forwarded requests
    DATA = "Data"
    DATA_EX = "DataEx"
    UPGRADE_ACK = "UpgradeAck"
    ACK_DONE = "AckDone"
    INV = "Inv"
    WB_REQ = "WbReq"  # (Tardis) home asks the owner for a timestamped writeback
    # Internal events
    WRITE_AFTER_READ = "WriteAfterRead"  # pending WC write resumes after a fill
    SI_SYNC = "SiSync"  # synchronization-point self-invalidation, per frame
    SI_OVERFLOW = "SiOverflow"  # FIFO overflow picked this frame as victim
    SC_DROP = "ScDrop"  # Scheurich drop of the single SC tear-off copy
    EVICT = "Evict"  # capacity replacement of this victim


class CacheAction(enum.Enum):
    READ_HIT = "read_hit"
    QUEUE_READ_WAITER = "queue_read_waiter"
    COUNT_READ_MISS = "count_read_miss"
    COUNT_WRITE_MISS = "count_write_miss"
    DROP_SC_TEAROFF = "drop_sc_tearoff"
    ALLOC_MSHR_READ = "alloc_mshr_read"
    ALLOC_MSHR_WRITE = "alloc_mshr_write"
    PIN_ALLOC_MSHR_UPGRADE = "pin_alloc_mshr_upgrade"
    SEND_GETS = "send_gets"
    SEND_GETX = "send_getx"
    SEND_UPGRADE = "send_upgrade"
    WRITE_HIT = "write_hit"
    WB_MERGE = "wb_merge"
    WB_MERGE_PENDING = "wb_merge_pending"
    WB_WAIT_SPACE = "wb_wait_space"
    WB_ALLOC = "wb_alloc"
    WB_ALLOC_PENDING = "wb_alloc_pending"
    INVALIDATE_COPY = "invalidate_copy"
    POP_CLOSE_MSHR = "pop_close_mshr"
    FILL_S = "fill_s"
    FILL_E_CLEAN = "fill_e_clean"
    FILL_E_DIRTY = "fill_e_dirty"
    APPLY_PENDING_WRITE = "apply_pending_write"
    WB_RETIRE = "wb_retire"
    UNPIN = "unpin"
    DROP_STALE_UPGRADE_COPY = "drop_stale_upgrade_copy"
    RETRY_DEFERRED_FILLS = "retry_deferred_fills"
    PROMOTE_TO_EXCLUSIVE = "promote_to_exclusive"
    APPLY_MSHR_WRITE = "apply_mshr_write"
    MARK_SI_FROM_GRANT = "mark_si_from_grant"
    WRITE_GRANTED = "write_granted"
    WRITE_COMPLETE = "write_complete"
    RECORD_INV = "record_inv"
    CONSUME_SI_NOTICE = "consume_si_notice"
    MARK_UPGRADE_INVALIDATED = "mark_upgrade_invalidated"
    REPLY_INV_ACK = "reply_inv_ack"
    REPLY_INV_ACK_DATA = "reply_inv_ack_data"
    SI_SYNC_SILENT = "si_sync_silent"
    SI_SYNC_NOTIFY = "si_sync_notify"
    SI_EARLY_SILENT = "si_early_silent"
    SI_EARLY_NOTIFY = "si_early_notify"
    SC_DROP_TEAROFF = "sc_drop_tearoff"
    EVICT_COUNT = "evict_count"
    EVICT_WB = "evict_wb"
    EVICT_REPL = "evict_repl"
    # Tardis (leased logical timestamps)
    TARDIS_READ_HIT = "tardis_read_hit"
    TARDIS_WRITE_HIT = "tardis_write_hit"
    LEASE_EXPIRE_SI = "lease_expire_si"
    TARDIS_FILL_S = "tardis_fill_s"
    TARDIS_FILL_E = "tardis_fill_e"
    TARDIS_APPLY_UPGRADE = "tardis_apply_upgrade"
    TARDIS_OWNER_WB = "tardis_owner_wb"
    DROP_STALE_WB_REQ = "drop_stale_wb_req"
    EVICT_WB_TS = "evict_wb_ts"


class DirState(enum.Enum):
    IDLE = "Idle"
    SHARED = "Shared"
    EXCL = "Exclusive"
    B_READ = "B_Read"
    B_WRITE = "B_Write"
    B_WCP = "B_WCPar"
    B_WB = "B_WaitWB"


class DirEvent(enum.Enum):
    GETS = "GetS"
    GETX = "GetX"
    UPGRADE = "Upgrade"
    INV_ACK = "InvAck"
    INV_ACK_DATA = "InvAckData"
    WB = "WB"
    REPL = "Repl"
    SI_NOTIFY = "SiNotify"
    LAST_ACK = "LastAck"  # internal: the final pending acknowledgment arrived


class DirAction(enum.Enum):
    DEFER = "defer"
    CLEAR_MIGRATORY = "clear_migratory"
    DETECT_MIGRATORY = "detect_migratory"
    BEGIN_READ_TXN = "begin_read_txn"
    BEGIN_WRITE_TXN = "begin_write_txn"
    BEGIN_MIGRATORY_TXN = "begin_migratory_txn"
    BEGIN_WRITE_TXN_SHARED = "begin_write_txn_shared"
    AWAIT_WB = "await_wb"
    INV_OWNER = "inv_owner"
    INV_SHARERS = "inv_sharers"
    GRANT_READ_TEAROFF = "grant_read_tearoff"
    GRANT_READ_TRACKED = "grant_read_tracked"
    GRANT_WRITE = "grant_write"
    GRANT_WRITE_PARALLEL = "grant_write_parallel"
    PROCESS_ACK = "process_ack"
    NOTIFICATION_AS_ACK = "notification_as_ack"  # historical bug, model only
    APPLY_NOTIFICATION = "apply_notification"
    RESTART_WAITING_REQUEST = "restart_waiting_request"
    ACCEPT_OWNER_DATA = "accept_owner_data"
    DROP_CLEAN_OWNER = "drop_clean_owner"
    REMOVE_SHARER = "remove_sharer"
    REMOVE_LAST_SHARER = "remove_last_sharer"
    COUNT_STALE = "count_stale"
    FINISH_TXN = "finish_txn"
    SEND_ACK_DONE = "send_ack_done"
    DRAIN_DEFERRED = "drain_deferred"
    # Tardis (leased logical timestamps)
    TARDIS_GRANT_READ = "tardis_grant_read"
    TARDIS_GRANT_WRITE = "tardis_grant_write"
    TARDIS_GRANT_UPGRADE = "tardis_grant_upgrade"
    REQUEST_WB = "request_wb"
    ACCEPT_OWNER_TS = "accept_owner_ts"


#: Result values handed back to the processor (mirrors protocol.controller).
HIT = "hit"
DONE = "done"
WAIT = "wait"

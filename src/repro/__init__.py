"""Dynamic Self-Invalidation (Lebeck & Wood, ISCA 1995) — a reproduction.

The library simulates a 32-node directory-based shared-memory
multiprocessor and implements the paper's dynamic self-invalidation (DSI)
protocols on top of sequentially- and weakly-consistent full-map
write-invalidate coherence.

Quickstart::

    from repro import Machine, SystemConfig, IdentifyScheme, workloads

    program = workloads.sparse(n_procs=8)
    base = Machine(SystemConfig(n_processors=8), program).run()
    dsi = Machine(
        SystemConfig(n_processors=8, identify=IdentifyScheme.VERSION), program
    ).run()
    print(dsi.exec_time / base.exec_time)
"""

from repro.config import (
    Consistency,
    IdentifyScheme,
    KB,
    MB,
    SIMechanism,
    SystemConfig,
)
from repro.errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.stats.report import RunResult, format_breakdown_table, format_table
from repro.system import Machine, simulate
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program, Trace

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "Consistency",
    "DeadlockError",
    "IdentifyScheme",
    "KB",
    "MB",
    "Machine",
    "Program",
    "ProtocolError",
    "ReproError",
    "RunResult",
    "SIMechanism",
    "SimulationError",
    "SystemConfig",
    "Trace",
    "TraceBuilder",
    "TraceError",
    "format_breakdown_table",
    "format_table",
    "simulate",
]

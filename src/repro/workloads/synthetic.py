"""Micro sharing patterns used by tests, examples and ablations.

Each returns a :class:`~repro.trace.ops.Program` exercising one canonical
coherence pattern in isolation.
"""

from repro.workloads.base import BLOCK, WORD, WorkloadContext


def producer_consumer(n_procs=4, blocks=8, iterations=6, compute=10, seed=1):
    """Processor 0 writes a region; everyone else reads it; repeat with
    barriers.  The cleanest possible DSI win."""
    ctx = WorkloadContext("producer_consumer", n_procs, seed=seed)
    base = ctx.alloc_words(0, blocks * BLOCK // WORD)
    ctx.barrier_all()
    for _ in range(iterations):
        producer = ctx.builders[0]
        producer.compute(compute)
        for block in range(blocks):
            producer.write(base + block * BLOCK)
        ctx.barrier_all()
        for consumer in ctx.builders[1:]:
            consumer.compute(compute)
            for block in range(blocks):
                consumer.read(base + block * BLOCK)
        ctx.barrier_all()
    return ctx.program(blocks=blocks, iterations=iterations)


def migratory(n_procs=4, blocks=4, rounds=8, compute=10, seed=2):
    """A region is read-modified-written by each processor in turn — the
    classic migratory pattern (lock-protected)."""
    ctx = WorkloadContext("migratory", n_procs, seed=seed)
    base = ctx.alloc_words(0, blocks * BLOCK // WORD)
    lock = ctx.new_lock()
    ctx.barrier_all()
    for _round in range(rounds):
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            builder.compute(compute)
            builder.lock(lock)
            for block in range(blocks):
                builder.read(base + block * BLOCK)
                builder.write(base + block * BLOCK)
            builder.unlock(lock)
        ctx.barrier_all()
    return ctx.program(blocks=blocks, rounds=rounds)


def read_mostly(n_procs=4, blocks=16, iterations=5, writes_per_iter=1, seed=3):
    """Widely-read data with occasional writes by processor 0."""
    ctx = WorkloadContext("read_mostly", n_procs, seed=seed)
    base = ctx.alloc_words(0, blocks * BLOCK // WORD)
    ctx.barrier_all()
    for _ in range(iterations):
        for builder in ctx.builders:
            builder.compute(5)
            for block in range(blocks):
                builder.read(base + block * BLOCK)
        ctx.barrier_all()
        writer = ctx.builders[0]
        for w in range(writes_per_iter):
            writer.write(base + (w % blocks) * BLOCK)
        ctx.barrier_all()
    return ctx.program(blocks=blocks, iterations=iterations)


def write_conflict(n_procs=3, conflict=True, rounds=1, seed=7):
    """Figure 2's coherence-anatomy micro-program.

    ``rounds`` rounds of: the second processor reads one block (when
    ``conflict``), barrier, the first processor writes it, barrier.  The
    block is homed on the *last* node so both request paths traverse the
    network.  Used by the harness to measure the cost of one conflicting
    write with and without an outstanding copy.
    """
    ctx = WorkloadContext("write_conflict", n_procs, seed=seed)
    addr = ctx.alloc_words(n_procs - 1, 8)
    ctx.barrier_all()
    for _round in range(rounds):
        if conflict:
            ctx.builders[1].read(addr)
        ctx.barrier_all()
        ctx.builders[0].compute(10).write(addr)
        ctx.barrier_all()
    return ctx.program(conflict=conflict, rounds=rounds)


def false_sharing(n_procs=4, words_per_proc=2, iterations=10, seed=4):
    """Every processor rewrites its own words of one shared block —
    coherence traffic with no true communication."""
    ctx = WorkloadContext("false_sharing", n_procs, seed=seed)
    base = ctx.alloc_words(0, max(n_procs * words_per_proc, BLOCK // WORD))
    ctx.barrier_all()
    for _ in range(iterations):
        for proc, builder in enumerate(ctx.builders):
            builder.compute(5)
            for w in range(words_per_proc):
                addr = base + (proc * words_per_proc + w) * WORD
                builder.read(addr)
                builder.write(addr)
        ctx.barrier_all()
    return ctx.program(words_per_proc=words_per_proc, iterations=iterations)

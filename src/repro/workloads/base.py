"""Shared infrastructure for the workload generators."""

import numpy as np

from repro.memory.address import Allocator
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program

#: simulated word size in bytes (1995-era 32-bit data words)
WORD = 4

#: cache block size assumed by the generators (matches the paper's 32 bytes)
BLOCK = 32


class WorkloadContext:
    """Allocator + per-processor trace builders + synchronization helpers.

    Generators allocate named regions ("local allocation": a processor's
    data lives in its own segment, making it the home node), then emit
    operations into per-processor builders, and finally call
    :meth:`program`.
    """

    def __init__(self, name, n_procs, seed=0):
        self.name = name
        self.n_procs = n_procs
        self.alloc = Allocator(n_procs, BLOCK)
        self.builders = [TraceBuilder() for _ in range(n_procs)]
        self.rng = np.random.default_rng(seed)
        self._next_barrier = 0
        self._lock_home = 0

    # ------------------------------------------------------------------
    # Memory layout
    # ------------------------------------------------------------------
    def alloc_words(self, node, n_words):
        """Reserve ``n_words`` words on ``node``; returns the base address."""
        return self.alloc.alloc(node, n_words * WORD)

    def alloc_array(self, n_words_per_proc):
        """A distributed array: ``n_words_per_proc`` words on every node.
        Returns the list of per-node base addresses."""
        return [self.alloc_words(node, n_words_per_proc) for node in range(self.n_procs)]

    def new_lock(self, home=None):
        """Allocate a lock word in its own cache block (no false sharing)."""
        if home is None:
            home = self._lock_home
            self._lock_home = (self._lock_home + 1) % self.n_procs
        return self.alloc.alloc(home, BLOCK)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def barrier_all(self):
        """Emit one global barrier into every processor's trace."""
        barrier_id = self._next_barrier
        self._next_barrier += 1
        for builder in self.builders:
            builder.barrier(barrier_id)

    # ------------------------------------------------------------------
    def program(self, home="segment", **meta):
        meta.setdefault("seed", None)
        meta = {k: v for k, v in meta.items() if v is not None}
        return Program(
            self.name,
            [builder.build() for builder in self.builders],
            home=home,
            meta=meta,
        )

    def stream_private(self, proc, base, n_words, stride_words=8, read_frac=1.0):
        """Stream over a private region (capacity pressure: models the rest
        of a program's data set).  ``stride_words=8`` touches one word per
        32-byte block."""
        builder = self.builders[proc]
        for word in range(0, n_words, stride_words):
            if read_frac >= 1.0 or self.rng.random() < read_frac:
                builder.read(base + word * WORD)


def spread_indices(rng, total, count, exclude_range=None):
    """``count`` distinct indices in ``[0, total)``, optionally avoiding a
    half-open ``exclude_range`` — used to pick *remote* neighbours."""
    if exclude_range is None:
        pool = total
        picks = rng.choice(pool, size=min(count, pool), replace=False)
        return picks.tolist()
    lo, hi = exclude_range
    pool = total - (hi - lo)
    if pool <= 0:
        return []
    picks = rng.choice(pool, size=min(count, pool), replace=False)
    return [int(p) if p < lo else int(p) + (hi - lo) for p in picks]

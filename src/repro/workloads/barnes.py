"""Barnes: hierarchical N-body (paper: "2048 bodies, 5 iterations").

Sharing pattern: the paper attributes Barnes' behaviour to *fine-grain
locking and load imbalance for this small data set* — a large
synchronization component that neither weak consistency nor DSI reduces
(§5.2).  The generator reproduces both properties:

* **tree build**: every body inserts into a shared tree; each touched cell
  is protected by one of a pool of fine-grain locks (lock, read cell,
  write cell, unlock) with real contention;
* **force computation**: a gather over many tree cells and a few other
  processors' bodies, with a heavy per-interaction compute gap;
* **imbalance**: body counts per processor are deterministically skewed
  (up to ~2x), so the per-phase barriers collect long waits.
"""

from repro.workloads.base import BLOCK, WorkloadContext


def barnes(
    n_procs=32,
    bodies_per_proc=24,
    cells=128,
    locks=32,
    gather=16,
    imbalance=0.8,
    iterations=3,
    compute_per_interaction=6,
    seed=404,
):
    """Build the Barnes program.

    ``imbalance`` skews per-processor body counts: processor ``p`` gets
    ``bodies_per_proc * (1 + imbalance * p / (n_procs - 1))`` bodies.
    """
    ctx = WorkloadContext("barnes", n_procs, seed=seed)
    # Shared tree cells: one cache block each, distributed round-robin.
    cell_addr = [ctx.alloc.alloc(c % n_procs, BLOCK) for c in range(cells)]
    cell_locks = [ctx.new_lock() for _ in range(locks)]
    # Bodies: each processor's bodies in its own segment (a block per body).
    counts = [
        max(1, round(bodies_per_proc * (1 + imbalance * p / max(1, n_procs - 1))))
        for p in range(n_procs)
    ]
    body_addr = {
        p: [ctx.alloc.alloc(p, BLOCK) for _ in range(counts[p])] for p in range(n_procs)
    }

    ctx.barrier_all()
    for _iteration in range(iterations):
        # Phase 1: tree build with fine-grain cell locking.
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            for body in range(counts[proc]):
                cell = int(ctx.rng.integers(0, cells))
                lock = cell_locks[cell % locks]
                builder.compute(4)
                builder.lock(lock)
                builder.read(cell_addr[cell])
                builder.compute(3)
                builder.write(cell_addr[cell])
                builder.unlock(lock)
        ctx.barrier_all()
        # Phase 2: force computation — gather over cells and remote bodies.
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            for body in range(counts[proc]):
                for _ in range(gather):
                    builder.read(cell_addr[int(ctx.rng.integers(0, cells))])
                    builder.compute(compute_per_interaction)
                for _ in range(2):
                    other = int(ctx.rng.integers(0, n_procs))
                    others = body_addr[other]
                    builder.read(others[int(ctx.rng.integers(0, len(others)))])
                builder.compute(compute_per_interaction * 2)
                builder.write(body_addr[proc][body])
        ctx.barrier_all()
    return ctx.program(
        seed=seed,
        bodies=sum(counts),
        cells=cells,
        locks=locks,
        iterations=iterations,
        imbalance=imbalance,
    )

"""Ocean: red-black relaxation over a row-partitioned grid
(paper: "98x98, 1 day").

Sharing pattern: each processor owns a thin band of grid rows (the paper's
98-row ocean over 32 processors leaves ~3 rows per processor, so *most*
rows are boundary rows shared with a neighbour).  Within a sweep every
processor first reads its neighbours' adjacent (ghost) rows, then updates
its own rows — and all processors sweep concurrently, so a neighbour's
ghost-row read races with the owner's rewrite *inside* the sweep.  Those
are the paper's "un-synchronized accesses to shared data": no
synchronization separates the conflicting read from the conflicting
write, so self-invalidation (which happens at sync operations) fires too
late and the directory must still send explicit invalidations — DSI has
little effect on Ocean while weak consistency, which simply overlaps the
write latency, helps a lot (§5.2).

Rows mix two update rates, as the real multigrid code does across levels:
even-indexed rows are updated every sweep (alternating columns), odd rows
only on odd sweeps.  A neighbour's ghost re-read of an every-sweep row is
always version-mismatched — DSI marks it, and under tear-off the owner's
next write needs no invalidation; a ghost re-read of an every-other-sweep
row matches half the time and fetches a normal block whose invalidation
remains explicit.  The blend reproduces Table 3's *partial* invalidation
reduction (~half) with little execution-time change.
"""

from repro.workloads.base import WORD, WorkloadContext


def ocean(
    n_procs=32,
    rows_per_proc=3,
    cols=64,
    sweeps_per_day=4,
    days=3,
    compute_per_point=2,
    ghost_stride=2,
    seed=303,
):
    """Build the Ocean program (row-partitioned red-black sweeps; one
    barrier per sweep, mirroring the convergence check of the real code)."""
    ctx = WorkloadContext("ocean", n_procs, seed=seed)
    row_words = cols
    band_base = [ctx.alloc_words(p, rows_per_proc * row_words) for p in range(n_procs)]

    def row_addr(proc, local_row):
        return band_base[proc] + local_row * row_words * WORD

    def read_row(builder, base):
        for col in range(0, cols, ghost_stride):
            builder.read(base + col * WORD)

    ctx.barrier_all()
    for _day in range(days):
        for sweep in range(sweeps_per_day):
            parity = sweep % 2
            for proc in range(n_procs):
                builder = ctx.builders[proc]
                # Ghost rows: read the adjacent rows of both neighbours.
                if proc > 0:
                    read_row(builder, row_addr(proc - 1, rows_per_proc - 1))
                if proc < n_procs - 1:
                    read_row(builder, row_addr(proc + 1, 0))
                # Update own rows: even rows every sweep (columns alternate
                # by colour), odd rows on odd sweeps only.
                for local_row in range(rows_per_proc):
                    global_row = proc * rows_per_proc + local_row
                    base = row_addr(proc, local_row)
                    if global_row % 2 == 0:
                        columns = range(parity, cols, 2)
                    elif parity == 1:
                        columns = range(cols)
                    else:
                        continue
                    for col in columns:
                        builder.read(base + col * WORD)
                        builder.compute(compute_per_point)
                        builder.write(base + col * WORD)
            ctx.barrier_all()
    return ctx.program(
        seed=seed,
        rows=n_procs * rows_per_proc,
        cols=cols,
        sweeps_per_day=sweeps_per_day,
        days=days,
    )

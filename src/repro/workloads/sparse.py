"""Sparse: iterative solve with a broadcast vector
(paper: "512x512 dense, 5 iterations").

Sharing pattern: the solution vector ``x`` is chunk-distributed (chunk
``p`` rewritten by processor ``p`` every iteration) while the
matrix-vector product makes **every processor sweep the whole vector in
the same order** immediately after the barrier.  Homes are round-robin, so
the writer of a chunk is (almost) never its home.

This is the access pattern where DSI shines brightest, for two reasons the
paper's §5.2 highlights:

* **read invalidation** — the first reader of each freshly-written block
  triggers a three-hop owner invalidation at a remote home, and because
  all processors sweep in lockstep, the other ~31 readers queue behind the
  busy directory entry and *all* absorb that invalidation latency.  DSI
  flushes the writer's copy at its synchronization point, so the whole
  convoy finds the block idle.  Weak consistency cannot eliminate any of
  this, which is why the paper measures DSI *outperforming* WC on Sparse.
* **write invalidation** — each owner's rewrite otherwise finds ~31
  sharers; with DSI the readers' (version-mismatched) copies flushed at
  the barrier.

The per-processor self-invalidate set (~``x_words/8`` blocks, default 224
non-home blocks) deliberately exceeds a 64-entry FIFO while the vector is
re-swept within the iteration, reproducing Figure 5: early FIFO
self-invalidation forces re-misses that return *normal* blocks and forfeit
most of DSI's benefit.
"""

from repro.workloads.base import WORD, WorkloadContext


def sparse(
    n_procs=32,
    x_words=2048,
    rows_per_proc=2,
    sweeps_per_row=2,
    sweep_stride=2,
    a_words_per_proc=1024,
    a_stride=8,
    iterations=4,
    compute_per_chunk=2,
    seed=101,
):
    """Build the Sparse program.

    Each of the ``rows_per_proc`` rows sweeps the full ``x_words``-word
    vector ``sweeps_per_row`` times at ``sweep_stride`` words, interleaved
    with strided reads of a private matrix panel of ``a_words_per_proc``
    words; afterwards every processor rewrites its own chunk of ``x``.
    """
    ctx = WorkloadContext("sparse", n_procs, seed=seed)
    chunk_words = x_words // n_procs
    x_chunks = ctx.alloc_array(chunk_words)
    a_base = [ctx.alloc_words(p, a_words_per_proc) for p in range(n_procs)]
    y_base = [ctx.alloc_words(p, rows_per_proc) for p in range(n_procs)]
    residual_lock = ctx.new_lock()
    residual = ctx.alloc_words(0, 1)

    def x_addr(word):
        owner, offset = divmod(word, chunk_words)
        return x_chunks[owner] + offset * WORD

    ctx.barrier_all()
    for _iteration in range(iterations):
        # Matrix-vector product: every processor sweeps x front-to-back.
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            a_cursor = 0
            for row in range(rows_per_proc):
                for _sweep in range(sweeps_per_row):
                    for word in range(0, x_words, sweep_stride):
                        builder.read(x_addr(word))
                        if word % (sweep_stride * 4) == 0:
                            builder.read(a_base[proc] + (a_cursor % a_words_per_proc) * WORD)
                            a_cursor += a_stride
                        builder.compute(compute_per_chunk)
                builder.write(y_base[proc] + row * WORD)
        # Lock-protected residual reduction.
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            builder.lock(residual_lock)
            builder.read(residual).compute(4).write(residual)
            builder.unlock(residual_lock)
        ctx.barrier_all()
        # x = f(y): every owner rewrites its chunk, invalidating the world.
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            builder.read(y_base[proc])
            for offset in range(chunk_words):
                builder.write(x_chunks[proc] + offset * WORD)
            builder.compute(compute_per_chunk * 8)
        ctx.barrier_all()
    # Round-robin homes: the vector interleaves across the machine, so a
    # reader's miss on a freshly-written block takes a three-hop
    # invalidation through a remote home.
    return ctx.program(
        home="round-robin",
        seed=seed,
        x_words=x_words,
        rows_per_proc=rows_per_proc,
        sweeps_per_row=sweeps_per_row,
        iterations=iterations,
    )

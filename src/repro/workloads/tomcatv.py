"""Tomcatv: vectorized mesh generation (paper: "512x512, 5 iterations").

Sharing pattern: several large arrays are row-partitioned; almost all
accesses are to a processor's own partition, with a small amount of
boundary-row sharing between neighbours and barriers between the phases of
each iteration.  What matters is the *working set*:

* at the small cache size the per-processor working set does not fit, so
  execution is dominated by capacity misses to idle (home-local) blocks
  that **no coherence optimisation helps** — the paper sees no change for
  any protocol at 256 KB;
* at the large cache size the arrays fit and execution is compute-bound
  with a small coherence tail from the boundary rows, yielding the paper's
  few-percent improvements (larger under a slow network, Figure 4).

Default geometry: 3 arrays x ``rows_per_proc=16`` x ``cols=128`` x 4-byte
words = 24 KB per processor — between the scaled cache sizes (16 KB /
128 KB) exactly as 512x512 sat between 256 KB and 2 MB.
"""

from repro.workloads.base import WORD, WorkloadContext

N_ARRAYS = 3


def tomcatv(
    n_procs=32,
    rows_per_proc=16,
    cols=128,
    iterations=3,
    compute_per_point=8,
    read_stride_words=2,
    seed=505,
):
    """Build the Tomcatv program."""
    ctx = WorkloadContext("tomcatv", n_procs, seed=seed)
    row_words = cols
    arrays = [
        [ctx.alloc_words(p, rows_per_proc * row_words) for p in range(n_procs)]
        for _ in range(N_ARRAYS)
    ]

    def row_addr(array, proc, local_row):
        return arrays[array][proc] + local_row * row_words * WORD

    stride = read_stride_words * WORD

    ctx.barrier_all()
    for _iteration in range(iterations):
        # Phase 1: stencil over own rows of arrays 0/1, writing array 2;
        # boundary rows of the neighbours are read once.
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            if proc > 0:
                for col in range(0, cols, read_stride_words * 4):
                    builder.read(row_addr(0, proc - 1, rows_per_proc - 1) + col * WORD)
            if proc < n_procs - 1:
                for col in range(0, cols, read_stride_words * 4):
                    builder.read(row_addr(0, proc + 1, 0) + col * WORD)
            for local_row in range(rows_per_proc):
                for col_byte in range(0, row_words * WORD, stride):
                    builder.read(row_addr(0, proc, local_row) + col_byte)
                    builder.read(row_addr(1, proc, local_row) + col_byte)
                    builder.compute(compute_per_point)
                    builder.write(row_addr(2, proc, local_row) + col_byte)
                    if col_byte:
                        # Recurrence on the previous point (tomcatv's sweeps
                        # carry row dependencies): under WC this read finds
                        # its block's write still outstanding — the paper's
                        # "read wb" stall that cancels the write-buffer win
                        # at the small cache size.
                        builder.read(row_addr(2, proc, local_row) + col_byte - stride)
        ctx.barrier_all()
        # Phase 2: sweep array 2 back into array 0 (private traffic).
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            for local_row in range(rows_per_proc):
                for col_byte in range(0, row_words * WORD, stride):
                    builder.read(row_addr(2, proc, local_row) + col_byte)
                    builder.compute(compute_per_point)
                    builder.write(row_addr(0, proc, local_row) + col_byte)
        ctx.barrier_all()
    return ctx.program(
        seed=seed,
        rows=n_procs * rows_per_proc,
        cols=cols,
        arrays=N_ARRAYS,
        iterations=iterations,
        wss_bytes_per_proc=N_ARRAYS * rows_per_proc * cols * WORD,
    )

"""Workload generators.

The paper evaluates five shared-memory programs (Table 1).  The original
binaries ran on the Wisconsin Wind Tunnel; here each program is replaced
by a synthetic trace generator that reproduces the *sharing pattern* the
paper attributes to it — the property DSI's behaviour actually depends on:

=========  ==================================================================
barnes     fine-grain locking on tree cells, load imbalance, gather reads
           (sync-dominated; neither WC nor DSI helps much)
em3d       local allocation, producer writes at the home node, a few percent
           remote consumer reads (write-invalidation dominated; DSI removes it)
ocean      nearest-neighbour rows, *unsynchronized* accesses between rare
           barriers (DSI mistimed; WC hides write latency)
sparse     a vector read by everyone and rewritten by its owners each
           iteration (both read and write invalidation; DSI beats WC)
tomcatv    large, mostly-private partitioned arrays; tiny boundary sharing
           (capacity-bound at small caches, compute-bound at large)
=========  ==================================================================

All generators are deterministic given their ``seed`` and scale down
linearly with the machine: the default sizes target the scaled cache pair
(16 KB / 128 KB) that stands in for the paper's 256 KB / 2 MB.
"""

from repro.workloads.barnes import barnes
from repro.workloads.em3d import em3d
from repro.workloads.ocean import ocean
from repro.workloads.sparse import sparse
from repro.workloads.synthetic import (
    false_sharing,
    migratory,
    producer_consumer,
    read_mostly,
)
from repro.workloads.tomcatv import tomcatv

#: The paper's Table 1, scaled: name -> (generator, description).
CATALOG = {
    "barnes": (barnes, "N-body: fine-grain cell locks, imbalanced bodies"),
    "em3d": (em3d, "bipartite graph, local allocation, 5% remote edges"),
    "ocean": (ocean, "red-black grid sweeps, unsynchronized row sharing"),
    "sparse": (sparse, "iterative solve: vector read by all, rewritten by owners"),
    "tomcatv": (tomcatv, "mesh generation: large private arrays, boundary rows"),
}


def by_name(name, **kwargs):
    """Build a paper workload by name (e.g. ``by_name("em3d", n_procs=8)``)."""
    if name not in CATALOG:
        raise KeyError(f"unknown workload {name!r}; have {sorted(CATALOG)}")
    generator, _description = CATALOG[name]
    return generator(**kwargs)


__all__ = [
    "CATALOG",
    "barnes",
    "by_name",
    "em3d",
    "false_sharing",
    "migratory",
    "ocean",
    "producer_consumer",
    "read_mostly",
    "sparse",
    "tomcatv",
]

"""Workload generators.

The paper evaluates five shared-memory programs (Table 1).  The original
binaries ran on the Wisconsin Wind Tunnel; here each program is replaced
by a synthetic trace generator that reproduces the *sharing pattern* the
paper attributes to it — the property DSI's behaviour actually depends on:

=========  ==================================================================
barnes     fine-grain locking on tree cells, load imbalance, gather reads
           (sync-dominated; neither WC nor DSI helps much)
em3d       local allocation, producer writes at the home node, a few percent
           remote consumer reads (write-invalidation dominated; DSI removes it)
ocean      nearest-neighbour rows, *unsynchronized* accesses between rare
           barriers (DSI mistimed; WC hides write latency)
sparse     a vector read by everyone and rewritten by its owners each
           iteration (both read and write invalidation; DSI beats WC)
tomcatv    large, mostly-private partitioned arrays; tiny boundary sharing
           (capacity-bound at small caches, compute-bound at large)
=========  ==================================================================

All generators are deterministic given their ``seed`` and scale down
linearly with the machine: the default sizes target the scaled cache pair
(16 KB / 128 KB) that stands in for the paper's 256 KB / 2 MB.
"""

from repro.workloads.barnes import barnes
from repro.workloads.em3d import em3d
from repro.workloads.ocean import ocean
from repro.workloads.sparse import sparse
from repro.workloads.synthetic import (
    false_sharing,
    migratory,
    producer_consumer,
    read_mostly,
    write_conflict,
)
from repro.workloads.tomcatv import tomcatv

#: The paper's Table 1, scaled: name -> (generator, description).
CATALOG = {
    "barnes": (barnes, "N-body: fine-grain cell locks, imbalanced bodies"),
    "em3d": (em3d, "bipartite graph, local allocation, 5% remote edges"),
    "ocean": (ocean, "red-black grid sweeps, unsynchronized row sharing"),
    "sparse": (sparse, "iterative solve: vector read by all, rewritten by owners"),
    "tomcatv": (tomcatv, "mesh generation: large private arrays, boundary rows"),
}

#: Additional named generators resolvable by :func:`by_name` — every
#: workload a :class:`~repro.harness.runspec.RunSpec` can reference must
#: appear here or in :data:`CATALOG` so that pool worker processes can
#: rebuild the program from its name alone.
EXTRAS = {
    "false_sharing": (false_sharing, "per-processor words in one shared block"),
    "migratory": (migratory, "lock-protected read-modify-write rotation"),
    "producer_consumer": (producer_consumer, "one writer, many readers, barriers"),
    "read_mostly": (read_mostly, "widely-read data, occasional writes"),
    "write_conflict": (write_conflict, "Figure 2 coherence-anatomy micro-program"),
}


def by_name(name, **kwargs):
    """Build a registered workload by name (e.g. ``by_name("em3d", n_procs=8)``)."""
    entry = CATALOG.get(name) or EXTRAS.get(name)
    if entry is None:
        raise KeyError(
            f"unknown workload {name!r}; have {sorted(CATALOG) + sorted(EXTRAS)}"
        )
    generator, _description = entry
    return generator(**kwargs)


__all__ = [
    "CATALOG",
    "EXTRAS",
    "barnes",
    "by_name",
    "em3d",
    "false_sharing",
    "migratory",
    "ocean",
    "producer_consumer",
    "read_mostly",
    "sparse",
    "tomcatv",
    "write_conflict",
]

"""EM3D: electromagnetic wave propagation on a bipartite graph
(paper: "192,000 nodes, degree 5, 5% remote").

Sharing pattern: the graph is bipartite — E nodes and H nodes — and
locally allocated: every node's value lives on the processor that owns and
updates it, so **all modifications to shared data occur at the home node**
(§5.2).  Each iteration has two barrier-separated phases:

* E phase: every processor reads the H-node values its E nodes depend on
  (``remote_frac`` of the edges cross processors) and rewrites its own
  E-node values;
* H phase: symmetrically, reads E values and rewrites H values.

Within a phase readers and writers touch *different* arrays, so all
conflicting accesses are cleanly separated by the barriers — the pattern
DSI handles perfectly:

* the producer's rewrite finds remote sharers -> **write invalidation**
  dominates coherence cost under SC;
* **read invalidation is ~zero**: a consumer's miss finds the block
  exclusive at its *home*, so invalidating it is a local hop;
* consumers' copies are version-mismatched every iteration and flush at
  the phase barrier, so the producer's writes find the block idle.

``private_words`` streams a per-processor private region once per phase,
modelling the rest of the program's data set: at the small cache size it
evicts the shared blocks (destroying the retained tag+version history and
with it some of DSI's accuracy), reproducing the paper's smaller gains at
256 KB than at 2 MB.
"""

from repro.workloads.base import WORD, WorkloadContext, spread_indices


def em3d(
    n_procs=32,
    nodes_per_proc=128,
    degree=5,
    remote_frac=0.05,
    iterations=5,
    compute_per_node=3,
    private_words=1024,
    seed=202,
):
    """Build the EM3D program.

    ``nodes_per_proc`` counts each class: a processor owns that many E
    nodes and as many H nodes.  ``private_words`` sizes the per-processor
    private streaming region (3k words = 12 KB by default).
    """
    ctx = WorkloadContext("em3d", n_procs, seed=seed)
    total = n_procs * nodes_per_proc  # per class
    # Node values (one word per node), locally allocated per owner.
    e_base = ctx.alloc_array(nodes_per_proc)
    h_base = ctx.alloc_array(nodes_per_proc)
    # Private edge lists and streaming region.
    edge_base = [ctx.alloc_words(p, 2 * nodes_per_proc * degree) for p in range(n_procs)]
    priv_base = [ctx.alloc_words(p, max(private_words, 1)) for p in range(n_procs)]

    def addr_of(bases, global_node):
        owner, offset = divmod(global_node, nodes_per_proc)
        return bases[owner] + offset * WORD

    def build_edges():
        table = {}
        for proc in range(n_procs):
            own_lo = proc * nodes_per_proc
            own_hi = own_lo + nodes_per_proc
            rows = []
            for _node in range(nodes_per_proc):
                n_remote = sum(1 for _ in range(degree) if ctx.rng.random() < remote_frac)
                remote = spread_indices(ctx.rng, total, n_remote, exclude_range=(own_lo, own_hi))
                n_local = degree - len(remote)
                local = (own_lo + ctx.rng.integers(0, nodes_per_proc, size=n_local)).tolist()
                rows.append(remote + local)
            table[proc] = rows
        return table

    e_edges = build_edges()  # E nodes read these H nodes
    h_edges = build_edges()  # H nodes read these E nodes

    def phase(read_bases, write_bases, edges, edge_offset):
        for proc in range(n_procs):
            builder = ctx.builders[proc]
            rows = edges[proc]
            for node in range(nodes_per_proc):
                for neighbour in rows[node]:
                    builder.read(addr_of(read_bases, neighbour))
                builder.read(edge_base[proc] + (edge_offset + node * degree) * WORD)
                builder.compute(compute_per_node)
                builder.write(write_bases[proc] + node * WORD)
            if private_words:
                ctx.stream_private(proc, priv_base[proc], private_words)
        ctx.barrier_all()

    ctx.barrier_all()
    for _iteration in range(iterations):
        phase(h_base, e_base, e_edges, 0)  # E phase: read H, write E
        phase(e_base, h_base, h_edges, nodes_per_proc * degree)  # H phase
    return ctx.program(
        seed=seed,
        nodes=2 * total,
        degree=degree,
        remote_frac=remote_frac,
        iterations=iterations,
        private_words=private_words,
    )

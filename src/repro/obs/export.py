"""Exporters: Perfetto/Chrome trace JSON, metrics dump, ASCII timeline.

The Perfetto export follows the Chrome trace-event format (the
``traceEvents`` array of ``{"ph", "ts", "pid", "tid", ...}`` objects)
which both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.  One simulated cycle maps to one microsecond of trace time.

Lanes: every processor gets a thread under the "processors" process,
every directory a thread under "directories", the network one thread of
its own; counter tracks (FIFO occupancy, write-buffer depth, directory
occupancy, NI queue depth) render above them.
"""

import json

from repro.obs.instrument import PROBE_TYPES
from repro.obs.spans import LANE_DIR, LANE_NET, LANE_PROC

#: Synthetic pids for the three lane groups (plus the harness lane the
#: sweep-telemetry export uses, so harness spans render next to sim lanes).
PID_PROC = 1
PID_DIR = 2
PID_NET = 3
PID_HARNESS = 4

_LANE_PID = {LANE_PROC: PID_PROC, LANE_DIR: PID_DIR, LANE_NET: PID_NET}


def _meta(pid, tid, name, kind):
    # tid defaults to 0 so every event carries the full ph/ts/pid/tid
    # schema (CI validates this uniformly).
    return {
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 0 if tid is None else tid,
        "name": kind,
        "args": {"name": name},
    }


def _flow(name, flow_id, ph, ts, pid, tid):
    event = {
        "name": name,
        "cat": "flow",
        "ph": ph,
        "id": flow_id,
        "ts": ts,
        "pid": pid,
        "tid": tid,
    }
    if ph == "f":
        event["bp"] = "e"  # bind to the enclosing slice, not the next one
    return event


def _flow_events(instrument, max_flows=20_000):
    """Flow arrows linking each miss slice to the directory slice that
    served it: a ``request`` arrow (miss start → dir start) and a
    ``response`` arrow (dir grant → miss completion).

    Matching prefers the causal ``txn`` id both spans carry (the
    transaction id propagated end-to-end through every message); spans
    without one fall back to (requester, block) with the directory span
    starting inside the miss span — the same containment a real request
    obeys.  Chrome's format requires the "s"/"f" anchors to fall
    *within* their bound slices, so arrows anchor at slice starts and at
    ``end - 1`` (every exported slice has ``dur >= 1``).
    """
    misses = {}
    miss_by_txn = {}
    for span in instrument.finished_spans():
        if span.category == "miss":
            misses.setdefault((span.node, span.args.get("block")), []).append(span)
            txn = span.args.get("txn")
            if txn is not None:
                miss_by_txn[txn] = span
    for candidates in misses.values():
        candidates.sort(key=lambda s: s.start)
    events = []
    flow_id = 0
    for span in instrument.finished_spans():
        if span.category != "dir":
            continue
        txn = span.args.get("txn")
        miss = miss_by_txn.get(txn) if txn is not None else None
        if miss is None:
            requester = span.args.get("requester")
            candidates = misses.get((requester, span.args.get("block")))
            if requester is None or not candidates:
                continue
            miss = next(
                (m for m in candidates if m.start <= span.start <= m.end), None
            )
        if miss is None or flow_id // 2 >= max_flows:
            continue
        events.append(_flow("request", flow_id, "s", miss.start, PID_PROC, miss.node))
        events.append(_flow("request", flow_id, "f", span.start, PID_DIR, span.node))
        flow_id += 1
        events.append(
            _flow("response", flow_id, "s", max(span.end - 1, span.start), PID_DIR, span.node)
        )
        events.append(
            _flow("response", flow_id, "f", max(miss.end - 1, miss.start), PID_PROC, miss.node)
        )
        flow_id += 1
    return events


def to_perfetto(instrument, max_instants=20_000):
    """Render an :class:`~repro.obs.instrument.Instrument` as a Chrome
    trace-event dict (``json.dump`` it to get a loadable ``trace.json``).

    ``max_instants`` bounds the per-message instant events (sends can
    dwarf everything else); spans and counter tracks are always complete.
    """
    events = [
        _meta(PID_PROC, None, "processors", "process_name"),
        _meta(PID_DIR, None, "directories", "process_name"),
        _meta(PID_NET, None, "network", "process_name"),
        _meta(PID_NET, 0, "messages", "thread_name"),
    ]
    for node in range(instrument.n_processors):
        events.append(_meta(PID_PROC, node, f"proc {node}", "thread_name"))
        events.append(_meta(PID_DIR, node, f"dir {node}", "thread_name"))
    # Spans as complete ("X") slices.  Zero-length directory grants are
    # clamped to one cycle so they stay visible.
    for span in instrument.finished_spans():
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start,
                "dur": max(span.duration, 1),
                "pid": _LANE_PID[span.lane],
                "tid": span.node,
                "args": {str(k): v for k, v in span.args.items()},
            }
        )
    # Counter tracks.
    for group, table in instrument.series_tables().items():
        for node, series in sorted(table.items()):
            for time, value in zip(series.times, series.values):
                events.append(
                    {
                        "name": group,
                        "ph": "C",
                        "ts": time,
                        "pid": _LANE_PID[LANE_DIR if group == "directory_occupancy" else LANE_PROC],
                        "tid": node,
                        "id": node,
                        "args": {f"node{node}": value},
                    }
                )
    # Flow arrows stitching request/response across lanes.
    flows = _flow_events(instrument)
    events.extend(flows)
    # Message sends as instant events on the network lane.
    instants = instrument.message_events[:max_instants]
    for time, kind, src, dst, block, is_network in instants:
        events.append(
            {
                "name": kind,
                "cat": "message",
                "ph": "i",
                "s": "t",
                "ts": time,
                "pid": PID_NET,
                "tid": 0,
                "args": {"src": src, "dst": dst, "block": block, "network": is_network},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "dsi-sim",
            "sim_cycles": instrument.now,
            "flows": len(flows) // 2,
            "spans_dropped": instrument.spans.dropped,
            "messages_dropped": instrument.messages_dropped
            + max(len(instrument.message_events) - max_instants, 0),
        },
    }


def write_perfetto(instrument, path, max_instants=20_000):
    """Write ``path`` as Chrome trace-event JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_perfetto(instrument, max_instants=max_instants), handle)


def spans_to_perfetto(threads, slices, counters=(), instants=(), other_data=None):
    """Assemble arbitrary spans into a Chrome trace-event dict.

    The generic counterpart of :func:`to_perfetto` for producers that are
    not an :class:`~repro.obs.instrument.Instrument` — the harness
    telemetry export renders sweep worker lanes through this, with the
    identical ``ph``/``ts``/``pid``/``tid`` schema CI validates.

    ``threads``: ``(pid, tid, process_name, thread_name)`` rows (process
    metadata is emitted once per distinct pid).
    ``slices``: ``(name, category, ts, dur, pid, tid, args)`` complete
    events; ``counters``: ``(name, ts, pid, tid, series, value)`` tracks;
    ``instants``: ``(name, category, ts, pid, tid, args)`` markers.
    """
    events = []
    seen_pids = set()
    for pid, tid, process_name, thread_name in threads:
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append(_meta(pid, None, process_name, "process_name"))
        events.append(_meta(pid, tid, thread_name, "thread_name"))
    for name, category, ts, dur, pid, tid, args in slices:
        events.append(
            {
                "name": name,
                "cat": category,
                "ph": "X",
                "ts": ts,
                "dur": max(dur, 1),
                "pid": pid,
                "tid": tid,
                "args": {str(k): v for k, v in (args or {}).items()},
            }
        )
    for name, ts, pid, tid, series, value in counters:
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "id": tid,
                "args": {series: value},
            }
        )
    for name, category, ts, pid, tid, args in instants:
        events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": {str(k): v for k, v in (args or {}).items()},
            }
        )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if other_data is not None:
        payload["otherData"] = other_data
    return payload


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def metrics_dict(instrument):
    """JSON-serializable metrics summary of one instrumented run."""
    end = instrument.now
    series = {
        group: {str(node): s.as_dict(end_time=end) for node, s in sorted(table.items())}
        for group, table in instrument.series_tables().items()
    }
    # Zero-fill the full probe inventory so a diff of two metrics dumps
    # distinguishes "never fired" from "does not exist".
    probe_counts = {name: 0 for name in PROBE_TYPES}
    probe_counts.update(instrument.counts)
    return {
        "sim_cycles": end,
        "probe_counts": probe_counts,
        "message_kinds": dict(instrument.message_kinds),
        "span_latency": {
            category: hist.as_dict() for category, hist in instrument.latency.items()
        },
        "series": series,
        "spans_recorded": len(instrument.spans.spans),
        "spans_dropped": instrument.spans.dropped,
        "messages_dropped": instrument.messages_dropped,
        "dropped": {
            "message_events": instrument.messages_dropped,
            "spans": instrument.spans.dropped,
            "series_points": sum(
                series_obj.dropped
                for table in instrument.series_tables().values()
                for series_obj in table.values()
            ),
        },
    }


def write_why(report, path):
    """Write a ``why_report`` payload (see :mod:`repro.obs.causal`) as
    stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def write_metrics(instrument, path, extra=None):
    """Write the metrics dump; ``extra`` merges in run context (workload,
    protocol, wall time) from the caller."""
    payload = metrics_dict(instrument)
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return payload


# ----------------------------------------------------------------------
# ASCII timeline
# ----------------------------------------------------------------------
_DENSITY = " .:-=+*#%@"


def ascii_timeline(instrument, width=72, categories=("miss", "sync")):
    """A terminal-width density timeline: one row per lane, each column a
    bucket of simulated time shaded by how much of it the lane spent
    inside a span of the selected categories."""
    spans = [s for s in instrument.finished_spans() if s.category in categories]
    end = max((s.end for s in spans), default=instrument.now) or 1
    lanes = {}
    for span in spans:
        lanes.setdefault((span.lane, span.node), []).append(span)
    if not lanes:
        return "(no spans recorded)"
    bucket = end / width
    lines = [
        f"timeline: 0 .. {end} cycles, {bucket:.0f} cycles/column "
        f"(categories: {', '.join(categories)})"
    ]
    for (lane, node), lane_spans in sorted(lanes.items()):
        fill = [0.0] * width
        for span in lane_spans:
            lo = min(int(span.start / bucket), width - 1)
            hi = min(int(max(span.end - 1, span.start) / bucket), width - 1)
            for col in range(lo, hi + 1):
                col_start = col * bucket
                col_end = col_start + bucket
                overlap = min(span.end, col_end) - max(span.start, col_start)
                fill[col] += max(overlap, 0) / bucket
        row = "".join(
            _DENSITY[min(int(f * (len(_DENSITY) - 1)), len(_DENSITY) - 1)] for f in fill
        )
        lines.append(f"{lane}{node:<4d} |{row}|")
    return "\n".join(lines)

"""Spans: probes stitched into timed intervals.

A :class:`Span` is one interval on one *lane* — a processor, a directory
or the network — with a category that names the protocol activity it
covers:

``miss``
    Cache-side coherence transaction, MSHR open → close (read miss,
    write miss or upgrade; request → directory serialization → grant →
    fill).
``dir``
    Directory-side transaction, request intake → response grant
    (including the busy period spent collecting acknowledgments).
``inv``
    One explicit invalidation round trip, INV sent → acknowledgment
    consumed.
``sync``
    One synchronization operation on a processor (write-buffer drain +
    self-invalidation flush + lock/barrier wait).
``flush``
    One self-invalidation flush inside a sync operation.

The :class:`SpanTracker` owns the open-span bookkeeping: ``begin`` is
idempotent per key (re-begun spans keep the earliest start, which is what
the directory's deferred-request re-dispatch wants) and ``end`` tolerates
unmatched keys (a span whose begin probe predates instrument attachment
simply doesn't exist).
"""

LANE_PROC = "proc"
LANE_DIR = "dir"
LANE_NET = "net"


class Span:
    """One finished interval on a lane."""

    __slots__ = ("category", "name", "lane", "node", "start", "end", "args")

    def __init__(self, category, name, lane, node, start, end, args=None):
        self.category = category
        self.name = name
        self.lane = lane
        self.node = node
        self.start = start
        self.end = end
        self.args = args or {}

    @property
    def duration(self):
        return self.end - self.start

    def as_dict(self):
        return {
            "category": self.category,
            "name": self.name,
            "lane": self.lane,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "args": dict(self.args),
        }

    def __repr__(self):
        return (
            f"Span({self.category}:{self.name} {self.lane}{self.node} "
            f"[{self.start}, {self.end}])"
        )


class SpanTracker:
    """Open-span bookkeeping plus the finished-span list."""

    __slots__ = ("spans", "_open", "max_spans", "dropped")

    def __init__(self, max_spans=200_000):
        self.spans = []
        self._open = {}
        self.max_spans = max_spans
        self.dropped = 0

    def begin(self, key, category, name, lane, node, start, **args):
        """Open a span under ``key``; a second begin for a live key keeps
        the earlier start (directory deferred-request re-dispatch)."""
        if key in self._open:
            return
        self._open[key] = (category, name, lane, node, start, args)

    def annotate(self, key, **args):
        """Merge extra args into an open span, if it exists."""
        entry = self._open.get(key)
        if entry is not None:
            entry[5].update(args)

    def end(self, key, end, **args):
        """Close the span under ``key``; returns it (or None if unmatched)."""
        entry = self._open.pop(key, None)
        if entry is None:
            return None
        category, name, lane, node, start, open_args = entry
        if args:
            open_args.update(args)
        span = Span(category, name, lane, node, start, end, open_args)
        if self.max_spans and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return span
        self.spans.append(span)
        return span

    def is_open(self, key):
        return key in self._open

    def open_count(self):
        return len(self._open)

    def by_category(self, category):
        return [span for span in self.spans if span.category == category]

"""Time-series samplers and latency histograms.

A :class:`TimeSeries` records ``(time, value)`` level changes — FIFO
occupancy, write-buffer depth, directory occupancy, network-interface
queue length — exactly at the cycles the level changes, so the series is
both a Perfetto counter track and, via :meth:`TimeSeries.histogram`, a
*time-weighted* value distribution (a level held for 1000 cycles weighs
1000x one held for a single cycle).

A :class:`Histogram` accumulates scalar samples (span latencies) and
reports count/mean/percentiles without storing more than a bounded
reservoir of exact values.
"""

import bisect


class TimeSeries:
    """Level changes of one counter over simulated time."""

    __slots__ = ("name", "times", "values", "max_points", "dropped")

    def __init__(self, name, max_points=100_000):
        self.name = name
        self.times = []
        self.values = []
        self.max_points = max_points
        self.dropped = 0

    def record(self, time, value):
        """Record the counter's new level at ``time``."""
        if self.times and self.times[-1] == time:
            # Same-cycle updates collapse to the final level.
            self.values[-1] = value
            return
        if self.max_points and len(self.times) >= self.max_points:
            self.dropped += 1
            return
        self.times.append(time)
        self.values.append(value)

    def __len__(self):
        return len(self.times)

    @property
    def last(self):
        return self.values[-1] if self.values else 0

    def value_at(self, time):
        """The level in effect at ``time`` (0 before the first sample)."""
        idx = bisect.bisect_right(self.times, time) - 1
        return self.values[idx] if idx >= 0 else 0

    def histogram(self, end_time=None):
        """Time-weighted distribution of the levels held by this series."""
        hist = Histogram(self.name)
        if not self.times:
            return hist
        end = end_time if end_time is not None else self.times[-1]
        for i, value in enumerate(self.values):
            start = self.times[i]
            stop = self.times[i + 1] if i + 1 < len(self.times) else end
            weight = max(stop - start, 0)
            if weight:
                hist.add(value, weight)
        if hist.count == 0:
            # Degenerate series (all changes in one cycle): weight the
            # final level once so stats are still defined.
            hist.add(self.values[-1])
        return hist

    def as_dict(self, end_time=None):
        stats = self.histogram(end_time=end_time).as_dict()
        stats["points"] = len(self.times)
        stats["points_dropped"] = self.dropped
        return stats


class Histogram:
    """Weighted scalar samples with percentile reporting."""

    __slots__ = ("name", "count", "total", "weight", "minimum", "maximum", "_samples")

    def __init__(self, name=""):
        self.name = name
        self.count = 0
        self.total = 0
        self.weight = 0
        self.minimum = None
        self.maximum = None
        self._samples = []  # (value, weight)

    def add(self, value, weight=1):
        self.count += 1
        self.total += value * weight
        self.weight += weight
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        self._samples.append((value, weight))

    def mean(self):
        return self.total / self.weight if self.weight else 0.0

    def percentile(self, q):
        """Weighted percentile ``q`` in [0, 100]."""
        if not self._samples:
            return 0
        ordered = sorted(self._samples)
        target = self.weight * q / 100.0
        cumulative = 0
        for value, weight in ordered:
            cumulative += weight
            if cumulative >= target:
                return value
        return ordered[-1][0]

    def percentiles(self, qs=(50, 90, 99)):
        return {f"p{q}": self.percentile(q) for q in qs}

    def as_dict(self):
        out = {
            "count": self.count,
            "min": self.minimum if self.minimum is not None else 0,
            "max": self.maximum if self.maximum is not None else 0,
            "mean": round(self.mean(), 3),
        }
        out.update(self.percentiles())
        return out

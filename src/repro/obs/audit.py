"""Runtime message accounting and the quiesce-time coherence audit.

The PR that introduced ``repro.coherence.explore`` proved the protocol's
invariants over a *bounded model*; this module turns the same claims into
always-on (when instrumented) runtime assertions over *actual runs*:

:class:`MessageLedger`
    Fed from the ``message_send``/``message_receive`` probes.  Every
    receive must match an earlier send on the same ``(kind, src, dst,
    block)`` channel, every INV_ACK/INV_ACK_DATA must answer an INV the
    home actually issued, and at quiesce nothing may remain outstanding.

:func:`audit_coherence`
    Walks the quiesced machine and cross-checks every directory entry
    against the caches: an Exclusive entry's owner must hold the only
    copy in E, a Shared entry's sharer bits must match the valid
    non-tear-off S copies, an Idle entry must have no tracked copies, and
    no MSHR, busy entry or deferred queue may survive the last processor.
    Tear-off copies (§3.3) are deliberately untracked by the full map and
    are exempt.

Failures raise :class:`~repro.errors.AuditError` with a block-level diff
— loud, specific, and pointing at the first divergent block.
"""

from collections import Counter

from repro.directory.state import DIR_EXCLUSIVE, DIR_SHARED
from repro.errors import AuditError
from repro.network.message import MsgKind

_ACKS = (MsgKind.INV_ACK, MsgKind.INV_ACK_DATA)


class MessageLedger:
    """Send/receive and INV/ack double-entry bookkeeping.

    ``on_send``/``on_receive`` raise immediately on an impossible event
    (an acknowledgment for an invalidation that was never sent, a receive
    with no matching send); :meth:`check_quiesced` raises if anything is
    still outstanding once the machine has quiesced.
    """

    __slots__ = ("outstanding", "inv_pending", "sends", "receives")

    def __init__(self):
        self.outstanding = Counter()  # (kind name, src, dst, block) -> in flight
        self.inv_pending = Counter()  # (home, target, block) -> unacked INVs
        self.sends = 0
        self.receives = 0

    def on_send(self, msg, now):
        self.sends += 1
        self.outstanding[(msg.kind.name, msg.src, msg.dst, msg.block)] += 1
        if msg.kind is MsgKind.INV:
            self.inv_pending[(msg.src, msg.dst, msg.block)] += 1
        elif msg.kind in _ACKS:
            key = (msg.dst, msg.src, msg.block)
            if not self.inv_pending[key]:
                raise AuditError(
                    f"cycle {now}: node {msg.src} acknowledged an invalidation "
                    f"of block {msg.block} that home {msg.dst} never sent"
                )
            self.inv_pending[key] -= 1

    def on_receive(self, msg, now):
        self.receives += 1
        key = (msg.kind.name, msg.src, msg.dst, msg.block)
        if not self.outstanding[key]:
            raise AuditError(
                f"cycle {now}: {msg.kind.name} {msg.src}->{msg.dst} "
                f"(block {msg.block}) received but never sent"
            )
        self.outstanding[key] -= 1

    def check_quiesced(self):
        """Raise unless every send was received and every INV acknowledged;
        returns the matched totals."""
        lost = sorted((key, n) for key, n in self.outstanding.items() if n)
        unacked = sorted((key, n) for key, n in self.inv_pending.items() if n)
        if lost or unacked:
            lines = [
                f"{kind} {src}->{dst} (block {block}) x{n} sent but never received"
                for (kind, src, dst, block), n in lost
            ]
            lines += [
                f"INV {home}->{target} (block {block}) x{n} never acknowledged"
                for (home, target, block), n in unacked
            ]
            raise AuditError(
                "message ledger unbalanced at quiesce:\n  " + "\n  ".join(lines)
            )
        return {"sends": self.sends, "receives": self.receives}


def _holders(copies):
    """Tracked {node: state letter} among actual cache copies (tear-off
    copies are untracked by design and excluded)."""
    return {
        node: state
        for node, (state, _dirty, _s_bit, tearoff) in copies.items()
        if not tearoff
    }


def _fmt(holding):
    if not holding:
        return "no tracked copies"
    return ", ".join(f"node {node}:{state}" for node, state in sorted(holding.items()))


def audit_coherence(machine):
    """Cross-check the full map against the caches of a quiesced machine.

    Raises :class:`~repro.errors.AuditError` with one diff line per
    divergent block; returns ``{"blocks": ..., "copies": ...}`` counts on
    success.

    Under Tardis the full map tracks only the exclusive owner — leased
    shared copies are deliberately untracked (that is the protocol's whole
    point), so the audit compares E copies only: an Exclusive entry's
    owner must hold the sole E copy, and no E copy may exist anywhere the
    directory does not record an owner.  Leased S copies are legal
    everywhere, including for blocks with no directory entry.
    """
    tardis = machine.config.tardis
    problems = []
    copies_by_block = {}
    for controller in machine.controllers:
        if controller.mshrs:
            problems.append(
                f"cache {controller.node}: MSHRs still open at quiesce for "
                f"blocks {sorted(controller.mshrs)}"
            )
        for block, copy in controller.cache.snapshot().items():
            copies_by_block.setdefault(block, {})[controller.node] = copy
    blocks = copies = 0
    known = set()
    for directory in machine.directories:
        for block, entry in sorted(directory.entries.items()):
            blocks += 1
            known.add(block)
            if entry.busy:
                problems.append(
                    f"block {block}: directory {directory.node} transaction "
                    f"still busy at quiesce"
                )
            if entry.deferred:
                problems.append(
                    f"block {block}: {len(entry.deferred)} request(s) still "
                    f"deferred at directory {directory.node}"
                )
            actual = copies_by_block.get(block, {})
            copies += len(actual)
            tracked = _holders(actual)
            if tardis:
                tracked = {node: s for node, s in tracked.items() if s == "E"}
                expected = {entry.owner: "E"} if entry.state == DIR_EXCLUSIVE else {}
            elif entry.state == DIR_EXCLUSIVE:
                expected = {entry.owner: "E"}
            elif entry.state == DIR_SHARED:
                expected = {node: "S" for node in entry.sharer_list()}
            else:
                expected = {}
            if tracked != expected:
                problems.append(
                    f"block {block}: directory {directory.node} says "
                    f"{entry.state_name()} ({_fmt(expected)}) but caches hold "
                    f"{_fmt(tracked)}"
                )
    for block, actual in sorted(copies_by_block.items()):
        if block in known:
            continue
        tracked = _holders(actual)
        if tardis:
            tracked = {node: s for node, s in tracked.items() if s == "E"}
        if tracked:
            problems.append(
                f"block {block}: cached ({_fmt(tracked)}) but has no "
                f"directory entry"
            )
    if problems:
        raise AuditError(
            "coherence audit failed at quiesce:\n  " + "\n  ".join(problems)
        )
    return {"blocks": blocks, "copies": copies}

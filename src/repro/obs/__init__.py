"""Simulator-wide instrumentation (``repro.obs``).

An :class:`~repro.obs.instrument.Instrument` is an event bus with typed
probe points — message send/receive, cache fill/evict/self-invalidate,
MSHR open/close, directory transaction begin/end, FIFO push/pop/overflow,
write-buffer fill/drain, sync enter/exit — threaded through every
component of the simulated machine::

    from repro import Machine, SystemConfig, workloads
    from repro.obs import Instrument, write_perfetto

    inst = Instrument()
    machine = Machine(SystemConfig(n_processors=8),
                      workloads.em3d(n_procs=8), instrument=inst)
    machine.run()
    write_perfetto(inst, "trace.json")   # open in ui.perfetto.dev

Probes stitch into coherence-transaction *spans* (miss request →
directory serialization → data grant → fill; inv → ack; sync enter →
exit) with per-span latency histograms, and into time-series counter
tracks (FIFO occupancy, write-buffer depth, directory occupancy, network
interface contention).

When no instrument is attached (the default) every probe site is a
single ``is not None`` check on a cached attribute: tier-1 runtime and
figure numbers are unchanged, which ``tests/test_obs.py`` proves with an
enabled-vs-disabled equivalence run.
"""

from repro.obs.analytics import AnalyticsInstrument, SharingClassifier
from repro.obs.audit import MessageLedger, audit_coherence
from repro.obs.causal import (
    CAUSAL_CATEGORIES,
    CausalInstrument,
    TxnTrace,
    WHY_SCHEMA_VERSION,
    diff_why,
    format_txn,
    format_why,
)
from repro.obs.export import (
    ascii_timeline,
    metrics_dict,
    spans_to_perfetto,
    to_perfetto,
    write_metrics,
    write_perfetto,
    write_why,
)
from repro.obs.instrument import Instrument
from repro.obs.samplers import Histogram, TimeSeries
from repro.obs.spans import Span

__all__ = [
    "Instrument",
    "AnalyticsInstrument",
    "CausalInstrument",
    "TxnTrace",
    "CAUSAL_CATEGORIES",
    "WHY_SCHEMA_VERSION",
    "diff_why",
    "format_txn",
    "format_why",
    "SharingClassifier",
    "MessageLedger",
    "audit_coherence",
    "Span",
    "Histogram",
    "TimeSeries",
    "to_perfetto",
    "spans_to_perfetto",
    "write_perfetto",
    "metrics_dict",
    "write_metrics",
    "write_why",
    "ascii_timeline",
]

"""Causal coherence tracing and exact cycle accounting (``dsi-sim why``).

The probe bus (:mod:`repro.obs.instrument`) reports *events*; this module
stitches them into **transactions**.  Every coherence transaction gets a
``txn_id`` at the requesting cache (:meth:`Instrument.alloc_txn`), the id
rides the request message and is echoed by everything causally downstream
— the directory's serialization, the INV fan-out it triggers, the acks
that come back, the grant, and the WC ACK_DONE — so the
:class:`CausalInstrument` can rebuild each transaction's causal chain
from the probe stream alone.

On top of the chains it produces an **exact cycle accounting**: every
simulated cycle of every node's execution time is attributed to exactly
one of :data:`CAUSAL_CATEGORIES`:

``compute``
    Trace gap cycles — the work between memory references.
``cache-hit``
    Cycles retiring hits (including hits retired in bulk by the
    direct-execution fast path, and the hit cost of WC buffered writes).
``miss-data``
    Miss stall not attributable to a finer cause: controller occupancy at
    the requester and the home's classification/response work.
``network-transit``
    Miss stall spent with the decisive message in the network (injection
    queueing + transit), request and grant leg.
``directory-occupancy``
    Miss stall between the request's arrival at the home and the home
    *serializing* it: controller occupancy, queueing behind other
    blocks, deferral behind a busy entry, waiting out a crossing
    writeback.
``inv-roundtrip``
    Miss stall the directory spent waiting for invalidation
    acknowledgments before it could respond (the grant's ``inval_wait``).
``ack-stall``
    Miss stall at the requester after a parallel grant, waiting for the
    directory's ACK_DONE.  Structural under the modeled SC/WC protocols:
    blocking plain accesses never receive parallel grants, so this total
    is normally zero — acknowledgment waiting surfaces as ``sync``
    (lock-word transfers) and ``write-buffer-stall`` instead.  Causal
    chains of sync transactions still show their ack-stall phase.
``write-buffer-stall``
    WC write-buffer pressure: full-buffer stalls, reads waiting on a
    buffered write, and sync-time drains.
``sync``
    Synchronization: lock/unlock/barrier waiting (including lock-word
    transfer) and the DSI sync-point flush.
``lease-expiry-reload``
    (Tardis) the entire stall of a read miss that only exists because
    the copy's lease expired — the cost side of timestamp
    self-invalidation.

**Conservation invariant** — for every node, the ten categories sum to
that node's execution time *exactly*.  :meth:`CausalInstrument.on_quiesce`
enforces it (like the PR 4 coherence audit) and raises
:class:`~repro.errors.AuditError` on any mismatch.  The check is exact
because both sides are integer cycle counts over the same run: the
processor's own :class:`~repro.stats.breakdown.Breakdown` already tiles
the node's time, and each blocking miss window is re-tiled here from the
transaction's causal marks, which telescope by construction.

Attribution rules:

* Only *blocking, non-sync* transactions contribute miss cycles (the
  processor is stalled on them, so their window equals its measured miss
  stall).  WC buffered writes overlap with execution and contribute
  nothing; lock-word transfers live inside ``sync``.
* A Tardis *renewal* (the cache held the block and only dropped it
  because the lease expired — flagged at MSHR allocation) attributes its
  whole window to ``lease-expiry-reload``.
* Tardis has no invalidations, so ``inv-roundtrip`` and ``ack-stall``
  are zero *by construction* — the accounting proves it per run instead
  of merely observing fewer messages.
"""

from collections import Counter

from repro.errors import AuditError
from repro.network.message import MsgKind
from repro.obs.instrument import Instrument

#: Schema version of the ``dsi-sim why`` JSON payload.
WHY_SCHEMA_VERSION = 1

#: The ten cycle-accounting categories, in display order.
CAUSAL_CATEGORIES = (
    "compute",
    "cache-hit",
    "miss-data",
    "network-transit",
    "directory-occupancy",
    "inv-roundtrip",
    "ack-stall",
    "write-buffer-stall",
    "sync",
    "lease-expiry-reload",
)

#: Categories fed by per-transaction miss-window tiling (the rest come
#: from the processor breakdown at quiesce).
MISS_CATEGORIES = (
    "miss-data",
    "network-transit",
    "directory-occupancy",
    "inv-roundtrip",
    "ack-stall",
    "lease-expiry-reload",
)

#: The INV-attributed subset (must be exactly zero under Tardis).
INV_CATEGORIES = ("inv-roundtrip", "ack-stall")

_REQUEST_KINDS = frozenset((MsgKind.GETS, MsgKind.GETX, MsgKind.UPGRADE))
_GRANT_KINDS = frozenset((MsgKind.DATA, MsgKind.DATA_EX, MsgKind.UPGRADE_ACK))


class TxnTrace:
    """One coherence transaction's causal marks.

    All times are simulated cycles.  ``None`` marks a hop that never
    happened (e.g. ``ack_done_send`` for an SC transaction)."""

    __slots__ = (
        "txn_id", "node", "block", "kind", "open", "blocking", "sync",
        "renewal", "req_send", "req_recv", "dir_node", "dir_begin",
        "grant_kind", "grant_send", "grant_recv", "inval_wait",
        "acks_pending", "ack_done_send", "ack_done_recv", "invs", "done",
        "segments",
    )

    def __init__(self, txn_id, node, block, kind, opened, blocking, sync, renewal):
        self.txn_id = txn_id
        self.node = node
        self.block = block
        self.kind = kind
        self.open = opened
        self.blocking = blocking
        self.sync = sync
        self.renewal = renewal
        self.req_send = None
        self.req_recv = None
        self.dir_node = None
        self.dir_begin = None
        self.grant_kind = None
        self.grant_send = None
        self.grant_recv = None
        self.inval_wait = 0
        self.acks_pending = False
        self.ack_done_send = None
        self.ack_done_recv = None
        self.invs = []  # [target, sent_at, acked_at | None]
        self.done = None
        self.segments = None  # [(category, cycles)] once finalized

    # ------------------------------------------------------------------
    @property
    def duration(self):
        if self.done is None:
            return 0
        return self.done - self.open

    @property
    def counted(self):
        """Whether this window entered the per-node miss totals."""
        return self.blocking and not self.sync

    def tile(self):
        """Tile the window ``[open, done]`` into labeled segments.

        The marks telescope: each boundary is clamped monotonically into
        the window, so the segment lengths always sum to the exact window
        length — the property the conservation check rests on.  A missing
        mark merges its would-be segment into the next present one."""
        t0, t1 = self.open, self.done
        if t1 <= t0:
            return []
        if self.renewal:
            return [("lease-expiry-reload", t1 - t0)]
        grant = self.grant_send
        marks = [
            ("miss-data", self.req_send),
            ("network-transit", self.req_recv),
            ("directory-occupancy", self.dir_begin),
        ]
        if grant is not None:
            marks.append(("miss-data", grant - self.inval_wait))
            marks.append(("inv-roundtrip", grant))
        marks.append(("network-transit", self.grant_recv))
        tail = "ack-stall" if self.acks_pending else "miss-data"
        segments = []
        prev = t0
        for label, at in marks:
            if at is None:
                continue
            at = min(max(at, prev), t1)
            if at > prev:
                segments.append((label, at - prev))
                prev = at
        if t1 > prev:
            segments.append((tail, t1 - prev))
        return segments

    # ------------------------------------------------------------------
    def chain(self):
        """The replayable causal chain: ``(time, node, description)``
        hops in time order."""
        hops = [(self.open, self.node, f"MSHR open ({self.kind}, blk {self.block})")]
        if self.req_send is not None:
            hops.append((self.req_send, self.node, "request injected"))
        if self.req_recv is not None:
            hops.append((self.req_recv, self.dir_node, "request at home"))
        if self.dir_begin is not None:
            hops.append((self.dir_begin, self.dir_node, "home serialized request"))
        for target, sent, acked in self.invs:
            hops.append((sent, self.dir_node, f"INV -> node {target}"))
            if acked is not None:
                hops.append((acked, self.dir_node, f"ack from node {target}"))
        if self.grant_send is not None:
            label = self.grant_kind or "grant"
            if self.inval_wait:
                label += f" (after {self.inval_wait} cycles of inv wait)"
            hops.append((self.grant_send, self.dir_node, f"{label} sent"))
        if self.grant_recv is not None:
            hops.append((self.grant_recv, self.node, "grant received"))
        if self.ack_done_send is not None:
            hops.append((self.ack_done_send, self.dir_node, "ACK_DONE sent"))
        if self.ack_done_recv is not None:
            hops.append((self.ack_done_recv, self.node, "ACK_DONE received"))
        if self.done is not None:
            hops.append((self.done, self.node, "transaction complete"))
        hops.sort(key=lambda hop: (hop[0] if hop[0] is not None else 0))
        return hops

    def flags(self):
        parts = []
        if not self.blocking:
            parts.append("non-blocking")
        if self.sync:
            parts.append("sync")
        if self.renewal:
            parts.append("lease-renewal")
        if self.acks_pending:
            parts.append("parallel-grant")
        return parts

    def as_dict(self):
        return {
            "txn": self.txn_id,
            "node": self.node,
            "block": self.block,
            "kind": self.kind,
            "open": self.open,
            "done": self.done,
            "cycles": self.duration,
            "counted": self.counted,
            "flags": self.flags(),
            "inval_wait": self.inval_wait,
            "invalidations": len(self.invs),
            "segments": [
                {"category": label, "cycles": cycles}
                for label, cycles in (self.segments or self.tile())
            ],
            "chain": [
                {"at": at, "node": node, "event": event}
                for at, node, event in self.chain()
            ],
        }

    def __repr__(self):
        return (
            f"TxnTrace(#{self.txn_id} {self.kind} blk={self.block} "
            f"node={self.node} {self.open}..{self.done})"
        )


class CausalInstrument(Instrument):
    """An :class:`Instrument` that rebuilds per-transaction causal DAGs
    and produces the exact cycle accounting behind ``dsi-sim why``.

    Strictly a consumer layer (the :class:`AnalyticsInstrument`
    contract): every override calls ``super()`` first and never touches
    simulator state, so instrumented runs stay bit-identical to bare
    ones — ``tests/test_obs.py`` proves it, fast path included.

    Parameters
    ----------
    max_txns:
        Bound on *retained* finished transactions (for top-K chains).
        Accounting totals are exact regardless — each transaction is
        folded into its node's category totals the moment it completes,
        before any retention decision.
    keep_txns:
        Optional iterable of txn ids retained unconditionally (the
        ``dsi-sim trace --txn`` replay path).
    """

    def __init__(self, max_txns=50_000, keep_txns=None, **kwargs):
        super().__init__(**kwargs)
        self.max_txns = max_txns
        self.keep_txns = frozenset(keep_txns or ())
        self._open_txns = {}
        self._kept = {}
        self.retained = []
        self.txns_dropped = 0
        self.txn_total = 0
        self.txn_blocking = 0
        self.txn_sync = 0
        self.txn_renewal = 0
        self.txn_unfinished = 0
        self._node_miss = {}
        self.accounting = None  # set at quiesce

    # ------------------------------------------------------------------
    # Probe overrides (super() first, read-only)
    # ------------------------------------------------------------------
    def mshr_open(self, node, block, kind, txn_id=None, blocking=False,
                  sync=False, renewal=False):
        super().mshr_open(node, block, kind, txn_id=txn_id, blocking=blocking,
                          sync=sync, renewal=renewal)
        if txn_id is None:
            return
        self.txn_total += 1
        if blocking:
            self.txn_blocking += 1
        if sync:
            self.txn_sync += 1
        if renewal:
            self.txn_renewal += 1
        self._open_txns[txn_id] = TxnTrace(
            txn_id, node, block, kind, self.now, blocking, sync, renewal
        )

    def message_send(self, msg, is_network):
        super().message_send(msg, is_network)
        if msg.txn_id is None:
            return
        txn = self._open_txns.get(msg.txn_id)
        if txn is None:
            return
        kind = msg.kind
        if kind in _REQUEST_KINDS:
            if txn.req_send is None:
                txn.req_send = self.now
        elif kind in _GRANT_KINDS:
            txn.grant_kind = kind.name
            txn.grant_send = self.now
            txn.inval_wait = msg.inval_wait
            txn.acks_pending = msg.acks_pending
        elif kind is MsgKind.ACK_DONE:
            txn.ack_done_send = self.now

    def message_receive(self, msg, is_network):
        super().message_receive(msg, is_network)
        if msg.txn_id is None:
            return
        txn = self._open_txns.get(msg.txn_id)
        if txn is None:
            return
        kind = msg.kind
        if kind in _REQUEST_KINDS:
            if txn.req_recv is None:
                txn.req_recv = self.now
        elif kind in _GRANT_KINDS:
            txn.grant_recv = self.now
        elif kind is MsgKind.ACK_DONE:
            txn.ack_done_recv = self.now

    def dir_txn_begin(self, home, block, kind, requester, txn_id=None):
        super().dir_txn_begin(home, block, kind, requester, txn_id=txn_id)
        if txn_id is None:
            return
        txn = self._open_txns.get(txn_id)
        if txn is not None:
            # Keep the *latest* serialization point: a request replayed
            # after a deferral drain or a crossing writeback is only
            # served then — the wait in between is directory occupancy.
            txn.dir_node = home
            txn.dir_begin = self.now

    def inv_sent(self, home, block, target, txn_id=None):
        super().inv_sent(home, block, target, txn_id=txn_id)
        if txn_id is None:
            return
        txn = self._open_txns.get(txn_id)
        if txn is not None:
            txn.invs.append([target, self.now, None])

    def inv_acked(self, home, block, target, txn_id=None):
        super().inv_acked(home, block, target, txn_id=txn_id)
        if txn_id is None:
            return
        txn = self._open_txns.get(txn_id)
        if txn is not None:
            for entry in txn.invs:
                if entry[0] == target and entry[2] is None:
                    entry[2] = self.now
                    break

    def txn_done(self, node, block, txn_id):
        super().txn_done(node, block, txn_id)
        txn = self._open_txns.pop(txn_id, None)
        if txn is None:
            return
        txn.done = self.now
        txn.segments = txn.tile()
        if txn.counted:
            totals = self._node_miss.get(txn.node)
            if totals is None:
                totals = self._node_miss[txn.node] = Counter()
            for label, cycles in txn.segments:
                totals[label] += cycles
        if txn.txn_id in self.keep_txns:
            self._kept[txn.txn_id] = txn
        elif len(self.retained) < self.max_txns:
            self.retained.append(txn)
        else:
            self.txns_dropped += 1

    # ------------------------------------------------------------------
    # Quiesce: assemble the accounting and enforce conservation
    # ------------------------------------------------------------------
    def on_quiesce(self, machine):
        super().on_quiesce(machine)
        self.txn_unfinished = len(self._open_txns)
        per_node = []
        failures = []
        for proc in machine.processors:
            node = proc.node
            breakdown = proc.breakdown
            finish = proc.finish_time or 0
            compute = int(proc.trace.gaps.sum()) if len(proc.trace) else 0
            cache_hit = breakdown.compute - compute
            miss = self._node_miss.get(node, Counter())
            categories = {category: 0 for category in CAUSAL_CATEGORIES}
            categories["compute"] = compute
            categories["cache-hit"] = cache_hit
            categories["sync"] = breakdown.sync + breakdown.dsi
            categories["write-buffer-stall"] = (
                breakdown.synch_wb + breakdown.read_wb + breakdown.wb_full
            )
            for label in MISS_CATEGORIES:
                categories[label] = miss.get(label, 0)
            total = sum(categories.values())
            miss_breakdown = (
                breakdown.read_inval + breakdown.read_other
                + breakdown.write_inval + breakdown.write_other
            )
            miss_tiled = sum(miss.values())
            if cache_hit < 0:
                failures.append(
                    f"node {node}: negative cache-hit residual {cache_hit}"
                )
            if miss_tiled != miss_breakdown:
                failures.append(
                    f"node {node}: tiled miss cycles {miss_tiled} != "
                    f"breakdown miss stall {miss_breakdown}"
                )
            if total != finish:
                failures.append(
                    f"node {node}: categories sum to {total}, "
                    f"exec time is {finish}"
                )
            per_node.append(
                {"node": node, "exec_time": finish, "categories": categories}
            )
        if failures:
            raise AuditError(
                "cycle accounting lost conservation:\n  " + "\n  ".join(failures)
            )
        totals = {category: 0 for category in CAUSAL_CATEGORIES}
        for entry in per_node:
            for category, cycles in entry["categories"].items():
                totals[category] += cycles
        self.accounting = {
            "exec_time": max(
                (entry["exec_time"] for entry in per_node), default=0
            ),
            "node_cycles": sum(entry["exec_time"] for entry in per_node),
            "categories": totals,
            "per_node": per_node,
        }
        return self.accounting

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def txn(self, txn_id):
        """A retained transaction by id (``None`` if unknown/dropped)."""
        kept = self._kept.get(txn_id)
        if kept is not None:
            return kept
        for txn in self.retained:
            if txn.txn_id == txn_id:
                return txn
        return None

    def top_transactions(self, top=10):
        """The costliest retained transactions: blocking windows first
        (they explain measured stall), widest first."""
        ranked = sorted(
            self.retained,
            key=lambda txn: (txn.counted, txn.duration, -txn.txn_id),
            reverse=True,
        )
        return ranked[:top]

    def why_report(self, workload=None, protocol=None, top=10):
        """The schema-versioned ``dsi-sim why`` payload."""
        if self.accounting is None:
            raise AuditError("why_report called before the machine quiesced")
        inv_cycles = sum(
            self.accounting["categories"][label] for label in INV_CATEGORIES
        )
        return {
            "schema_version": WHY_SCHEMA_VERSION,
            "workload": workload,
            "protocol": protocol,
            "exec_time": self.accounting["exec_time"],
            "node_cycles": self.accounting["node_cycles"],
            "categories": dict(self.accounting["categories"]),
            "inv_attributed_cycles": inv_cycles,
            "per_node": self.accounting["per_node"],
            "transactions": {
                "total": self.txn_total,
                "blocking": self.txn_blocking,
                "sync": self.txn_sync,
                "lease_renewals": self.txn_renewal,
                "unfinished": self.txn_unfinished,
                "retained": len(self.retained),
                "dropped": self.txns_dropped,
            },
            "conservation": {
                "ok": True,
                "nodes": len(self.accounting["per_node"]),
            },
            "top": [txn.as_dict() for txn in self.top_transactions(top)],
        }


def diff_why(base, other):
    """Mechanistic two-variant diff of two ``why_report`` payloads.

    Positive deltas mean ``other`` spends *more* cycles there than
    ``base`` — e.g. base→DSI-V should show a negative ``inv-roundtrip``
    delta bought with a positive ``miss-data``/``compute``-relative
    share, and base→Tardis drives both INV categories to zero."""
    categories = {}
    for label in CAUSAL_CATEGORIES:
        b = base["categories"].get(label, 0)
        o = other["categories"].get(label, 0)
        categories[label] = {"base": b, "other": o, "delta": o - b}
    return {
        "schema_version": WHY_SCHEMA_VERSION,
        "workload": base.get("workload"),
        "base": base.get("protocol"),
        "other": other.get("protocol"),
        "exec_time": {
            "base": base["exec_time"],
            "other": other["exec_time"],
            "delta": other["exec_time"] - base["exec_time"],
        },
        "inv_attributed_cycles": {
            "base": base["inv_attributed_cycles"],
            "other": other["inv_attributed_cycles"],
            "delta": other["inv_attributed_cycles"] - base["inv_attributed_cycles"],
        },
        "categories": categories,
    }


def format_txn(txn, width=72):
    """ASCII rendering of one transaction: header, causal chain, and the
    tiled segment bar (the ``trace --txn`` / ``why`` chain view)."""
    flags = txn.flags()
    suffix = f" [{', '.join(flags)}]" if flags else ""
    lines = [
        f"txn #{txn.txn_id}: {txn.kind} blk {txn.block} @ node {txn.node}, "
        f"{txn.open}..{txn.done} ({txn.duration} cycles){suffix}"
    ]
    for at, node, event in txn.chain():
        where = f"n{node}" if node is not None else "--"
        lines.append(f"  {at:>10}  {where:>4}  {event}")
    segments = txn.segments or txn.tile()
    if segments:
        total = sum(cycles for _, cycles in segments) or 1
        lines.append("  segments:")
        for label, cycles in segments:
            bar = "#" * max(1, round(cycles * min(width, 40) / total))
            lines.append(f"    {label:<20} {cycles:>10}  {bar}")
        if not txn.counted:
            lines.append(
                "    (window overlaps execution or sync; "
                "not counted in miss totals)"
            )
    return "\n".join(lines)


def format_why(report, diff=None):
    """ASCII rendering of a ``why_report`` payload (and optional diff)."""
    from repro.stats.report import format_table

    lines = [
        f"why: {report['workload']} / {report['protocol']} — "
        f"exec_time {report['exec_time']}, "
        f"{report['conservation']['nodes']} nodes, conservation OK"
    ]
    node_cycles = report["node_cycles"] or 1
    rows = []
    for label in CAUSAL_CATEGORIES:
        cycles = report["categories"].get(label, 0)
        rows.append([label, cycles, f"{100.0 * cycles / node_cycles:.1f}%"])
    lines.append(format_table(["category", "cycles", "share"], rows))
    txns = report["transactions"]
    lines.append(
        f"transactions: {txns['total']} total, {txns['blocking']} blocking, "
        f"{txns['sync']} sync, {txns['lease_renewals']} lease renewals, "
        f"{txns['dropped']} dropped past retention"
    )
    if diff is not None:
        lines.append(
            f"\ndiff vs {diff['base']}: exec_time "
            f"{diff['exec_time']['base']} -> {diff['exec_time']['other']} "
            f"({diff['exec_time']['delta']:+d})"
        )
        rows = [
            [
                label,
                diff["categories"][label]["base"],
                diff["categories"][label]["other"],
                f"{diff['categories'][label]['delta']:+d}",
            ]
            for label in CAUSAL_CATEGORIES
        ]
        lines.append(format_table(["category", diff["base"], diff["other"], "delta"], rows))
    return "\n".join(lines)

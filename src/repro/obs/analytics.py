"""Coherence analytics: per-block sharing-pattern classification and the
DSI speculation-accuracy report.

A :class:`SharingClassifier` folds the probe stream into per-block
*lifetimes* — the time-ordered sequence of directory accesses plus the
cache fill/evict/self-invalidate events — and classifies each block into
the taxonomy the paper's argument (and the ROADMAP hybrid
update/invalidate predictor) turns on:

``private``
    Only one node ever touched the block.
``read-mostly``
    No writes at all, or reads outnumber writes by ``read_mostly_ratio``.
``migratory``
    Ownership hands off between writers, and the next writer *read* the
    block during the previous writer's tenure — the read-modify-write
    signature Cox-Fowler detection keys on.
``producer-consumer``
    One dominant writer and a stable set of other readers between writes.
``widely-shared``
    Several writers and several readers with none of the structures above.
``other``
    Anything left (too little history to call).

The access stream is what the *directory* sees: cache hits are invisible,
which is exactly the right granularity — a pattern only matters to the
protocol when it produces coherence traffic.  One known undercount:
upgrade grants install exclusivity without a ``cache_fill`` probe, so
``fills`` per block counts data responses only.

**DSI accuracy** (the paper's §3 "ideal" framing): a self-invalidation of
block B by node N is a *correct* speculation when N does not re-read B
before B's next write — the copy would have been invalidated anyway.  A
re-read by N before any intervening write means DSI threw away a copy
that was still good (an extra miss the eager protocol would not have
had).  Re-reads are always visible: the copy is gone, so the next read
must go through the directory.

**Lease accuracy** (Tardis runs): the DSI re-read judge does not apply —
Tardis discovers expiry lazily *at* the next read, so every expiry would
be scored as a premature invalidation.  The right measure is the renewal
split the directory observes: a renewal whose retained ``wts`` no longer
matches (``lease_renew_changed``) means the lease expired for a reason —
the copy had gone stale; an unchanged renewal (``lease_renew_unchanged``)
paid a directory round trip for a copy that was still valid (the lease
was too short); an expiry that never produced a renewal cost nothing at
all.  :func:`lease_report` folds the probe counters into the ``lease``
section of the report.

:class:`AnalyticsInstrument` packages the classifier with the
:class:`~repro.obs.audit.MessageLedger` as a drop-in
:class:`~repro.obs.instrument.Instrument`: every override calls
``super()`` first and only *reads* probe arguments, so instrumented runs
stay bit-identical to bare runs (the equivalence test covers it).  At
quiesce it balances the ledger and runs the directory-vs-cache coherence
audit (:func:`~repro.obs.audit.audit_coherence`).
"""

import bisect
from collections import Counter

from repro.obs.audit import MessageLedger, audit_coherence
from repro.obs.instrument import Instrument

#: Classification taxonomy, in report order.
PATTERNS = (
    "private",
    "read-mostly",
    "migratory",
    "producer-consumer",
    "widely-shared",
    "other",
)

#: Version of the dict produced by :meth:`SharingClassifier.report`.
#: v2 added the ``lease`` section (Tardis lease-prediction accuracy).
REPORT_SCHEMA_VERSION = 2


def lease_report(counts):
    """Fold the Tardis lease probe counters into the report's ``lease``
    section (all zeros / ``None`` accuracies outside Tardis runs)."""
    grants = counts.get("lease_grant", 0)
    expiries = counts.get("lease_expire", 0)
    changed = counts.get("lease_renew_changed", 0)
    unchanged = counts.get("lease_renew_unchanged", 0)
    renewals = changed + unchanged
    return {
        "grants": grants,
        "expiries": expiries,
        "renewals": renewals,
        "renew_changed": changed,
        "renew_unchanged": unchanged,
        "never_renewed": max(expiries - renewals, 0),
        # Of the expiries that came back for a renewal, how many had
        # actually gone stale?  High = leases expire about when writes
        # arrive; low = leases are too short (wasted reload misses).
        "renewal_accuracy": round(changed / renewals, 4) if renewals else None,
    }


class BlockLife:
    """One block's lifetime, folded from the probe stream."""

    __slots__ = (
        "block",
        "accesses",
        "reads",
        "writes",
        "readers",
        "writers",
        "fills",
        "si_fills",
        "tearoff_fills",
        "evicts",
        "si_grants",
        "si_events",
        "dropped",
    )

    def __init__(self, block):
        self.block = block
        self.accesses = []  # (time, node, is_write), time-ordered
        self.reads = 0
        self.writes = 0
        self.readers = set()
        self.writers = set()
        self.fills = 0
        self.si_fills = 0
        self.tearoff_fills = 0
        self.evicts = 0
        self.si_grants = 0
        self.si_events = []  # (time, node)
        self.dropped = 0  # events beyond the per-block retention cap


class SharingClassifier:
    """Fold directory/cache probes into per-block lifetimes and classify.

    Parameters
    ----------
    max_events_per_block:
        Retention cap on each block's access and self-invalidation lists
        (counts are never capped); overflow is counted in
        ``BlockLife.dropped`` and surfaced in the report.
    read_mostly_ratio:
        Reads-per-write at or above which a multi-reader block is called
        read-mostly even though it does see writes.
    """

    def __init__(self, max_events_per_block=20_000, read_mostly_ratio=8.0):
        self.blocks = {}
        self.max_events_per_block = max_events_per_block
        self.read_mostly_ratio = read_mostly_ratio

    def _life(self, block):
        life = self.blocks.get(block)
        if life is None:
            life = self.blocks[block] = BlockLife(block)
        return life

    # ------------------------------------------------------------------
    # Probe feed
    # ------------------------------------------------------------------
    def on_access(self, time, block, node, kind):
        """One logical directory request ("read", "write" or "upgrade")."""
        life = self._life(block)
        is_write = kind != "read"
        if is_write:
            life.writes += 1
            life.writers.add(node)
        else:
            life.reads += 1
            life.readers.add(node)
        if len(life.accesses) < self.max_events_per_block:
            life.accesses.append((time, node, is_write))
        else:
            life.dropped += 1

    def on_grant(self, time, block, si, tearoff):
        if si:
            self._life(block).si_grants += 1

    def on_fill(self, time, block, node, si, tearoff):
        life = self._life(block)
        life.fills += 1
        if si:
            life.si_fills += 1
        if tearoff:
            life.tearoff_fills += 1

    def on_evict(self, time, block, node):
        self._life(block).evicts += 1

    def on_self_invalidate(self, time, block, node):
        life = self._life(block)
        if len(life.si_events) < self.max_events_per_block:
            life.si_events.append((time, node))
        else:
            life.dropped += 1

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @staticmethod
    def _write_intervals(life):
        """(pairs, handoffs, rmw_handoffs, reader sets per interval).

        An *interval* is the span between consecutive writes (plus the
        tail after the last write); a *handoff* is an interval whose two
        bounding writes came from different nodes; an *rmw handoff*
        additionally saw the incoming writer read during the interval.
        """
        pairs = handoffs = rmw = 0
        reader_sets = []
        prev_writer = None
        current = set()
        for _time, node, is_write in life.accesses:
            if is_write:
                if prev_writer is not None:
                    pairs += 1
                    reader_sets.append(frozenset(current))
                    if node != prev_writer:
                        handoffs += 1
                        if node in current:
                            rmw += 1
                prev_writer = node
                current = set()
            elif prev_writer is not None:
                current.add(node)
        reader_sets.append(frozenset(current))  # tail after the last write
        return pairs, handoffs, rmw, reader_sets

    @staticmethod
    def _reader_stability(reader_sets):
        """Mean Jaccard similarity of consecutive non-empty reader sets."""
        if len(reader_sets) < 2:
            return 1.0
        total = 0.0
        for a, b in zip(reader_sets, reader_sets[1:]):
            total += len(a & b) / len(a | b)
        return total / (len(reader_sets) - 1)

    def classify(self, life):
        """Pattern label for one block's lifetime."""
        nodes = life.readers | life.writers
        if not nodes:
            return "other"
        if len(nodes) == 1:
            return "private"
        if not life.writes:
            return "read-mostly"
        if (
            life.reads / life.writes >= self.read_mostly_ratio
            and len(life.readers) >= 2
        ):
            return "read-mostly"
        pairs, handoffs, rmw, reader_sets = self._write_intervals(life)
        mean_readers = sum(len(s) for s in reader_sets) / len(reader_sets)
        if (
            len(life.writers) >= 2
            and pairs >= 2
            and handoffs / pairs >= 0.5
            and (rmw / handoffs if handoffs else 0.0) >= 0.6
            and mean_readers <= 2.0
        ):
            return "migratory"
        writer_counts = Counter(
            node for _time, node, is_write in life.accesses if is_write
        )
        if writer_counts:
            top_writer, top_writes = writer_counts.most_common(1)[0]
            nonempty = [s for s in reader_sets if s]
            if (
                top_writes / life.writes >= 0.8
                and len(nonempty) >= 2
                and any(s - {top_writer} for s in nonempty)
                and self._reader_stability(nonempty) >= 0.5
            ):
                return "producer-consumer"
        if len(life.readers) >= 3 and len(life.writers) >= 2:
            return "widely-shared"
        return "other"

    # ------------------------------------------------------------------
    # DSI accuracy
    # ------------------------------------------------------------------
    @staticmethod
    def _dsi_accuracy(life):
        """(correct, mispredicted) over this block's self-invalidations.

        Correct: the invalidating node issued no read of the block before
        the block's next write (including "never again").  Mispredicted:
        it re-read first — the copy was still good.
        """
        if not life.si_events:
            return 0, 0
        times = [time for time, _node, _is_write in life.accesses]
        correct = wrong = 0
        for si_time, node in life.si_events:
            start = bisect.bisect_right(times, si_time)
            ok = True
            for _time, access_node, is_write in life.accesses[start:]:
                if is_write:
                    break
                if access_node == node:
                    ok = False
                    break
            if ok:
                correct += 1
            else:
                wrong += 1
        return correct, wrong

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def report(self, top=12):
        """JSON-serializable classification + DSI-accuracy summary."""
        pattern_counts = Counter()
        per_pattern = {}
        rows = []
        total_correct = total_wrong = total_si = total_si_grants = 0
        dropped = 0
        for block, life in self.blocks.items():
            pattern = self.classify(life)
            pattern_counts[pattern] += 1
            correct, wrong = self._dsi_accuracy(life)
            total_correct += correct
            total_wrong += wrong
            total_si += len(life.si_events)
            total_si_grants += life.si_grants
            dropped += life.dropped
            slot = per_pattern.setdefault(pattern, [0, 0])
            slot[0] += correct
            slot[1] += wrong
            rows.append(
                {
                    "block": block,
                    "pattern": pattern,
                    "reads": life.reads,
                    "writes": life.writes,
                    "readers": len(life.readers),
                    "writers": len(life.writers),
                    "fills": life.fills,
                    "evicts": life.evicts,
                    "si_grants": life.si_grants,
                    "self_invalidations": len(life.si_events),
                    "si_correct": correct,
                    "si_wrong": wrong,
                }
            )
        rows.sort(key=lambda row: (-(row["reads"] + row["writes"]), row["block"]))
        judged = total_correct + total_wrong
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "blocks": len(self.blocks),
            "events_dropped": dropped,
            "patterns": {p: pattern_counts.get(p, 0) for p in PATTERNS},
            "dsi": {
                "si_marked_grants": total_si_grants,
                "self_invalidations": total_si,
                "correct": total_correct,
                "mispredicted": total_wrong,
                "accuracy": round(total_correct / judged, 4) if judged else None,
                "by_pattern": {
                    pattern: {
                        "correct": c,
                        "mispredicted": w,
                        "accuracy": round(c / (c + w), 4) if (c + w) else None,
                    }
                    for pattern, (c, w) in sorted(per_pattern.items())
                },
            },
            "top_blocks": rows[:top],
        }


class AnalyticsInstrument(Instrument):
    """An :class:`~repro.obs.instrument.Instrument` with the analytics
    consumers attached: a :class:`SharingClassifier`, a
    :class:`~repro.obs.audit.MessageLedger` (``audit=False`` disables it),
    and the quiesce-time coherence audit.

    Strictly a consumer layer: every override calls ``super()`` first and
    never touches simulator state, so runs remain bit-identical to bare
    ones.
    """

    def __init__(self, audit=True, classifier=None, **kwargs):
        super().__init__(**kwargs)
        self.classifier = classifier if classifier is not None else SharingClassifier()
        self.ledger = MessageLedger() if audit else None
        self.audit_result = None

    # -- network -------------------------------------------------------
    def message_send(self, msg, is_network):
        super().message_send(msg, is_network)
        if self.ledger is not None:
            self.ledger.on_send(msg, self.now)

    def message_receive(self, msg, is_network):
        super().message_receive(msg, is_network)
        if self.ledger is not None:
            self.ledger.on_receive(msg, self.now)

    # -- cache ---------------------------------------------------------
    def cache_fill(self, node, block, state_name, si, tearoff):
        super().cache_fill(node, block, state_name, si, tearoff)
        self.classifier.on_fill(self.now, block, node, si, tearoff)

    def cache_evict(self, node, block, dirty):
        super().cache_evict(node, block, dirty)
        self.classifier.on_evict(self.now, block, node)

    def cache_self_invalidate(self, node, block, at_sync):
        super().cache_self_invalidate(node, block, at_sync)
        self.classifier.on_self_invalidate(self.now, block, node)

    # -- directory -----------------------------------------------------
    def dir_txn_begin(self, home, block, kind, requester, txn_id=None):
        # The base class keeps exactly one open span per (home, block), so
        # "span not open yet" distinguishes a *new* logical request from a
        # replay of the same one (deferred-queue drain, post-writeback
        # restart) — replays must not double-count the access.
        fresh = not self.spans.is_open(("dir", home, block))
        super().dir_txn_begin(home, block, kind, requester, txn_id=txn_id)
        if fresh:
            self.classifier.on_access(self.now, block, requester, kind)

    def dir_grant(self, home, block, requester, kind, si, tearoff, txn_id=None):
        super().dir_grant(home, block, requester, kind, si, tearoff, txn_id=txn_id)
        self.classifier.on_grant(self.now, block, si, tearoff)

    # -- quiesce -------------------------------------------------------
    def on_quiesce(self, machine):
        summary = {}
        if self.ledger is not None:
            summary["messages"] = self.ledger.check_quiesced()
            summary["coherence"] = audit_coherence(machine)
        self.audit_result = summary
        return summary

    def report(self, top=12):
        """The classifier's report (see :meth:`SharingClassifier.report`),
        plus the ``lease`` section folded from the probe counters."""
        report = self.classifier.report(top=top)
        report["lease"] = lease_report(self.counts)
        return report

"""The central instrumentation bus.

One :class:`Instrument` is attached to a :class:`~repro.system.Machine`
at construction time (``Machine(config, program, instrument=inst)``); the
machine hands it to every component, and each component keeps the
reference in a local attribute (``self.obs``).  A probe site is::

    if self.obs is not None:
        self.obs.cache_fill(self.node, block, state, si, tearoff)

so with no instrument attached (the default) the entire layer costs one
attribute load and an ``is not None`` test per probe — the null case is
decided once, at attach time, by storing ``None``.

The instrument does three things with the probe stream:

* **counts** every probe and every message kind;
* **stitches spans** (:mod:`repro.obs.spans`): cache-side miss
  transactions (MSHR open → close), directory transactions (request →
  grant), invalidation round trips (INV → ack) and synchronization
  episodes (enter → exit), each feeding a latency
  :class:`~repro.obs.samplers.Histogram`;
* **samples time series** (:mod:`repro.obs.samplers`): per-node FIFO
  occupancy, write-buffer depth, directory occupancy (open transactions
  per home) and network-interface queue depth.

Exporters (:mod:`repro.obs.export`) turn the result into a
Chrome/Perfetto ``trace.json``, a JSON metrics dump, or an ASCII
timeline.
"""

from collections import Counter

from repro.obs.samplers import Histogram, TimeSeries
from repro.obs.spans import LANE_DIR, LANE_PROC, SpanTracker

#: Span categories with latency histograms.
CATEGORIES = ("miss", "dir", "inv", "sync")

#: Every counter key a probe can bump.  Exporters zero-fill these in the
#: metrics dump so consumers can tell "this probe never fired" apart from
#: "this probe does not exist" when diffing runs.
PROBE_TYPES = (
    "message_send",
    "message_receive",
    "cache_fill",
    "cache_fill_si",
    "cache_fill_tearoff",
    "cache_evict",
    "cache_evict_dirty",
    "self_invalidate",
    "self_invalidate_early",
    "protocol_transition",
    "mshr_open",
    "mshr_close",
    "txn_done",
    "dir_txn",
    "dir_grant",
    "dir_grant_si",
    "dir_grant_tearoff",
    "inv_sent",
    "inv_acked",
    "fifo_push",
    "fifo_pop",
    "fifo_overflow",
    "wb_fill",
    "wb_drain",
    "sync_enter",
    "sync_exit",
    "lease_grant",
    "lease_renew_changed",
    "lease_renew_unchanged",
    "lease_expire",
)


class Instrument:
    """Typed probe points, span stitching and time-series sampling.

    Parameters
    ----------
    max_message_events:
        Bound on individually-recorded message events (instants in the
        Perfetto export).  Counting is never bounded; 0 disables the
        per-message log entirely.
    max_spans:
        Bound on retained finished spans (latency histograms keep
        accumulating past it).
    """

    #: Span categories, exposed on the class for consumers holding an
    #: instance (the CLI's latency summary iterates them).
    CATEGORIES = CATEGORIES

    def __init__(self, max_message_events=100_000, max_spans=200_000):
        self.sim = None
        self.n_processors = 0
        self.counts = Counter()
        self.message_kinds = Counter()
        self.transitions = Counter()
        self.spans = SpanTracker(max_spans=max_spans)
        self.latency = {category: Histogram(category) for category in CATEGORIES}
        self.fifo_series = {}
        self.wb_series = {}
        self.dir_series = {}
        self.ni_series = {}
        self.message_events = []
        self.max_message_events = max_message_events
        self.messages_dropped = 0
        self._dir_open = Counter()
        self._next_txn_id = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def bind(self, sim, n_processors):
        """Called by the machine when the instrument is attached."""
        if self.sim is not None and self.sim is not sim:
            raise ValueError("an Instrument can only be attached to one machine")
        self.sim = sim
        self.n_processors = max(self.n_processors, n_processors)

    @property
    def now(self):
        return self.sim.now if self.sim is not None else 0

    def alloc_txn(self):
        """Hand out the next coherence-transaction id.

        Called by a cache controller when it registers an MSHR; the id
        rides the request :class:`~repro.network.message.Message` and is
        echoed by every causally downstream message (grant, INV fan-out,
        INV acks, ACK_DONE), keying the Perfetto flow arrows and the
        causal DAGs of :mod:`repro.obs.causal`.  Ids are allocated in
        dispatch order, so a deterministic simulation assigns identical
        ids on every instrumented re-run — ``dsi-sim trace --txn N``
        replays exactly the transaction ``dsi-sim why`` reported."""
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return txn_id

    def _series(self, table, node, prefix):
        series = table.get(node)
        if series is None:
            series = table[node] = TimeSeries(f"{prefix}{node}")
        return series

    # ------------------------------------------------------------------
    # Network probes
    # ------------------------------------------------------------------
    def message_send(self, msg, is_network):
        self.counts["message_send"] += 1
        self.message_kinds[msg.kind.name] += 1
        if self.max_message_events:
            if len(self.message_events) < self.max_message_events:
                self.message_events.append(
                    (self.now, msg.kind.name, msg.src, msg.dst, msg.block, is_network)
                )
            else:
                self.messages_dropped += 1

    def message_receive(self, msg, is_network):
        self.counts["message_receive"] += 1

    def ni_queue(self, node, depth):
        """Network-interface injection queue depth changed."""
        self._series(self.ni_series, node, "ni").record(self.now, depth)

    # ------------------------------------------------------------------
    # Cache probes
    # ------------------------------------------------------------------
    def cache_fill(self, node, block, state_name, si, tearoff):
        self.counts["cache_fill"] += 1
        if si:
            self.counts["cache_fill_si"] += 1
        if tearoff:
            self.counts["cache_fill_tearoff"] += 1

    def cache_evict(self, node, block, dirty):
        self.counts["cache_evict"] += 1
        if dirty:
            self.counts["cache_evict_dirty"] += 1

    def cache_self_invalidate(self, node, block, at_sync):
        self.counts["self_invalidate"] += 1
        if not at_sync:
            self.counts["self_invalidate_early"] += 1

    # ------------------------------------------------------------------
    # Protocol transitions (the coherence tables' single probe site)
    # ------------------------------------------------------------------
    def protocol_transition(self, side, node, block, state, event, next_state):
        """One table row fired at a controller.

        ``side`` is "cache" or "dir"; the states/events are the symbolic
        names from :mod:`repro.coherence.events`.  Aggregated per
        (side, state, event, next_state) — the histogram of which protocol
        rows actually fire in a run.
        """
        self.counts["protocol_transition"] += 1
        self.transitions[(side, state, event, next_state)] += 1

    # ------------------------------------------------------------------
    # MSHR probes (cache-side coherence transactions)
    # ------------------------------------------------------------------
    def mshr_open(self, node, block, kind, txn_id=None, blocking=False,
                  sync=False, renewal=False):
        """A cache-side coherence transaction opened.

        ``txn_id`` is the causal id from :meth:`alloc_txn`; ``blocking``
        means the issuing processor stalls until :meth:`txn_done`
        (``False`` for WC buffered writes); ``sync`` marks a lock-word
        transfer issued inside a synchronization operation; ``renewal``
        marks a Tardis reload of a copy the cache only dropped because
        its lease expired."""
        self.counts["mshr_open"] += 1
        self.spans.begin(
            ("mshr", node, block),
            "miss",
            f"{kind} blk{block}",
            LANE_PROC,
            node,
            self.now,
            kind=kind,
            block=block,
            txn=txn_id,
        )

    def mshr_close(self, node, block):
        self.counts["mshr_close"] += 1
        span = self.spans.end(("mshr", node, block), self.now)
        if span is not None:
            self.latency["miss"].add(span.duration)

    def txn_done(self, node, block, txn_id):
        """The transaction's completion callback fired at the requester.

        Distinct from :meth:`mshr_close`: a fill deferred by pinned
        frames pops the MSHR first and completes the waiting access only
        once a frame frees up, so completion — the instant a blocking
        processor's stall ends — can be later than the MSHR pop."""
        self.counts["txn_done"] += 1

    # ------------------------------------------------------------------
    # Directory probes
    # ------------------------------------------------------------------
    def dir_txn_begin(self, home, block, kind, requester, txn_id=None):
        key = ("dir", home, block)
        self.counts["dir_txn"] += 1
        if not self.spans.is_open(key):
            self._dir_open[home] += 1
            self._series(self.dir_series, home, "dir").record(
                self.now, self._dir_open[home]
            )
        self.spans.begin(
            key,
            "dir",
            f"{kind} blk{block}",
            LANE_DIR,
            home,
            self.now,
            kind=kind,
            block=block,
            requester=requester,
            txn=txn_id,
        )

    def dir_txn_end(self, home, block):
        span = self.spans.end(("dir", home, block), self.now)
        if span is not None:
            self.latency["dir"].add(span.duration)
            self._dir_open[home] -= 1
            self._series(self.dir_series, home, "dir").record(
                self.now, self._dir_open[home]
            )

    def dir_grant(self, home, block, requester, kind, si, tearoff, txn_id=None):
        """The directory responded to a request (DATA/DATA_EX/UPGRADE_ACK).

        ``kind`` is "read", "write" or "upgrade"; ``si`` and ``tearoff``
        carry the identification policy's decision for this grant — the
        ground truth the DSI-accuracy report measures speculation against.
        """
        self.counts["dir_grant"] += 1
        if si:
            self.counts["dir_grant_si"] += 1
        if tearoff:
            self.counts["dir_grant_tearoff"] += 1

    def inv_sent(self, home, block, target, txn_id=None):
        self.counts["inv_sent"] += 1
        self.spans.begin(
            ("inv", home, block, target),
            "inv",
            f"inv blk{block}->{target}",
            LANE_DIR,
            home,
            self.now,
            block=block,
            target=target,
            txn=txn_id,
        )

    def inv_acked(self, home, block, target, txn_id=None):
        self.counts["inv_acked"] += 1
        span = self.spans.end(("inv", home, block, target), self.now)
        if span is not None:
            self.latency["inv"].add(span.duration)

    # ------------------------------------------------------------------
    # Tardis lease probes
    # ------------------------------------------------------------------
    def lease_grant(self, home, block, requester, lease, renewed, changed):
        """A Tardis read grant extended a block's lease.

        ``renewed`` means the requester held an expired copy of this block
        (its retained ``wts`` rode the GETS); ``changed`` refines a
        renewal: the block was written since that copy was leased, i.e.
        the lease expiry was a *justified* self-invalidation rather than a
        wasted one.  The renewed/changed split is the lease-prediction
        accuracy measure reported by ``dsi-sim analyze``.
        """
        self.counts["lease_grant"] += 1
        if renewed:
            if changed:
                self.counts["lease_renew_changed"] += 1
            else:
                self.counts["lease_renew_unchanged"] += 1

    def lease_expire(self, node, block):
        """A cache dropped a copy because its lease expired (pts > rts)."""
        self.counts["lease_expire"] += 1

    # ------------------------------------------------------------------
    # Self-invalidation FIFO probes
    # ------------------------------------------------------------------
    def fifo_push(self, node, depth, block=None):
        self.counts["fifo_push"] += 1
        self._series(self.fifo_series, node, "fifo").record(self.now, depth)

    def fifo_pop(self, node, depth, block=None):
        self.counts["fifo_pop"] += 1
        self._series(self.fifo_series, node, "fifo").record(self.now, depth)

    def fifo_overflow(self, node, block=None):
        self.counts["fifo_overflow"] += 1

    # ------------------------------------------------------------------
    # Write-buffer probes
    # ------------------------------------------------------------------
    def wb_fill(self, node, depth, block=None):
        self.counts["wb_fill"] += 1
        self._series(self.wb_series, node, "wb").record(self.now, depth)

    def wb_drain(self, node, depth, block=None):
        self.counts["wb_drain"] += 1
        self._series(self.wb_series, node, "wb").record(self.now, depth)

    # ------------------------------------------------------------------
    # Synchronization probes
    # ------------------------------------------------------------------
    def sync_enter(self, node, kind):
        self.counts["sync_enter"] += 1
        self.spans.begin(
            ("sync", node),
            "sync",
            kind,
            LANE_PROC,
            node,
            self.now,
            kind=kind,
        )

    def sync_exit(self, node, kind):
        self.counts["sync_exit"] += 1
        span = self.spans.end(("sync", node), self.now)
        if span is not None:
            self.latency["sync"].add(span.duration)

    # ------------------------------------------------------------------
    # Quiesce
    # ------------------------------------------------------------------
    def on_quiesce(self, machine):
        """Called by the machine once every processor has finished.

        The base instrument does nothing with it; consumer layers override
        it (:class:`~repro.obs.analytics.AnalyticsInstrument` audits the
        quiesced machine's directory state against the caches here)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def finished_spans(self):
        return list(self.spans.spans)

    def series_tables(self):
        """{group: {node: TimeSeries}} for every sampled counter."""
        return {
            "fifo_occupancy": self.fifo_series,
            "write_buffer_depth": self.wb_series,
            "directory_occupancy": self.dir_series,
            "ni_queue_depth": self.ni_series,
        }

    def __repr__(self):
        return (
            f"Instrument(spans={len(self.spans.spans)}, "
            f"messages={self.counts['message_send']})"
        )

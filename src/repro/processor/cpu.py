"""The trace-driven processor model.

Each processor walks its trace, folding compute gaps and cache hits into
*computation* time, and blocking (or, under WC, buffering) on everything
else.  To keep the event count proportional to misses rather than
references, runs of hits are batched: the processor advances its local
time privately and re-synchronizes with the global event queue whenever
it blocks or after ``config.quantum`` cycles — the same bounded-lookahead
approach the Wisconsin Wind Tunnel used (its quantum was the 100-cycle
network latency).  Every *blocking* operation is realigned to the exact
cycle first, so stall accounting is precise.

Stall attribution follows the paper's Figure 3 categories: the directory
reports how long it waited for invalidation acknowledgments before
responding (``inval_wait``), which becomes read/write *invalidation* time;
the rest of a miss is read/write *other*; synchronization operations
accumulate ``synch_wb`` (write-buffer drain), ``dsi`` (self-invalidation
flush) and ``sync`` (lock/barrier waiting, including lock-word transfer).
"""

from repro.processor.fastpath import FastPath
from repro.stats.breakdown import Breakdown
from repro.trace.ops import OP_LOCK, OP_READ, OP_UNLOCK, OP_WRITE


class StampSource:
    """Globally increasing write stamps (the simulated "data")."""

    __slots__ = ("_next",)

    def __init__(self):
        self._next = 0

    def next(self):
        self._next += 1
        return self._next


class Processor:
    """One trace-driven CPU."""

    def __init__(self, sim, config, node, controller, trace, locks, barrier, stamps,
                 instrument=None):
        self.sim = sim
        self.node = node
        self.controller = controller
        self.trace = trace
        self.locks = locks
        self.barrier = barrier
        self.stamps = stamps
        self.obs = instrument
        self.block_shift = config.block_shift
        self.hit_cycles = config.cache_hit_cycles
        self.quantum = max(1, config.quantum)
        self.breakdown = Breakdown()
        self.idx = 0
        self._gap_charged = False
        self._stall_start = 0
        self.finished = False
        self.finish_time = None
        # WWT-style direct execution (repro.processor.fastpath): off under
        # Tardis (hits mutate lease state) and under the invariant monitor
        # (it must observe every access).  Instrumented runs keep it — the
        # interpreted hit path fires no probes, so neither does the batcher.
        if config.direct_execution and not config.tardis and not config.check_invariants:
            self._fast = FastPath(self)
        else:
            self._fast = None

    def start(self):
        self.sim.schedule(0, self._run)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _run(self):
        sim = self.sim
        ctrl = self.controller
        breakdown = self.breakdown
        trace = self.trace
        gaps, kinds, addrs = trace.gaps, trace.kinds, trace.addrs
        n_ops = len(kinds)
        quantum = self.quantum
        hit_cycles = self.hit_cycles
        shift = self.block_shift
        fast = self._fast
        idx = self.idx
        elapsed = 0
        while True:
            if idx >= n_ops:
                self.idx = idx
                if elapsed:
                    sim.schedule(elapsed, self._run)
                else:
                    self._finish()
                return
            if fast is not None:
                # Direct execution: retire the eligible hit run vectorized.
                # None = quantum boundary scheduled (state saved); otherwise
                # fall through to the interpreted loop for the first op that
                # misses, touches DSI state, or is a sync op.
                result = fast.advance(idx, elapsed)
                if result is None:
                    return
                next_idx, next_elapsed = result
                if next_idx != idx:
                    idx = next_idx
                    elapsed = next_elapsed
                    self._gap_charged = False
                    continue
            if not self._gap_charged:
                gap = int(gaps[idx])
                if gap:
                    breakdown.compute += gap
                    elapsed += gap
                self._gap_charged = True
                if elapsed >= quantum:
                    self.idx = idx
                    sim.schedule(elapsed, self._run)
                    return
            kind = kinds[idx]
            if kind == OP_READ:
                block = int(addrs[idx]) >> shift
                if ctrl.try_read(block):
                    breakdown.compute += hit_cycles
                    elapsed += hit_cycles
                    idx += 1
                    self._gap_charged = False
                    if elapsed >= quantum:
                        self.idx = idx
                        sim.schedule(elapsed, self._run)
                        return
                    continue
                self.idx = idx
                if elapsed:
                    sim.schedule(elapsed, self._run)
                    return
                self._stall_start = sim.now
                ctrl.read(block, self._read_done)
                return
            if kind == OP_WRITE:
                block = int(addrs[idx]) >> shift
                if ctrl.try_write(block, self.stamps.next()):
                    breakdown.compute += hit_cycles
                    elapsed += hit_cycles
                    idx += 1
                    self._gap_charged = False
                    if elapsed >= quantum:
                        self.idx = idx
                        sim.schedule(elapsed, self._run)
                        return
                    continue
                self.idx = idx
                if elapsed:
                    sim.schedule(elapsed, self._run)
                    return
                self._stall_start = sim.now
                status = ctrl.write(block, self.stamps.next(), self._write_done)
                if status == "wait":
                    return
                # WC: the write was buffered and its request issued.
                breakdown.compute += hit_cycles
                elapsed += hit_cycles
                idx += 1
                self._gap_charged = False
                continue
            # Synchronization operation: always realign first.
            self.idx = idx
            if elapsed:
                sim.schedule(elapsed, self._run)
                return
            self._do_sync(int(kind), int(addrs[idx]))
            return

    # ------------------------------------------------------------------
    # Completion callbacks
    # ------------------------------------------------------------------
    def _advance(self):
        self.idx += 1
        self._gap_charged = False
        self.sim.schedule(0, self._run)

    def _read_done(self, inval_wait, reason):
        stall = self.sim.now - self._stall_start
        breakdown = self.breakdown
        if reason == "read_wb":
            breakdown.read_wb += stall
        else:
            inval = min(inval_wait, stall)
            breakdown.read_inval += inval
            breakdown.read_other += stall - inval
        self._advance()

    def _write_done(self, inval_wait, reason):
        stall = self.sim.now - self._stall_start
        breakdown = self.breakdown
        if reason == "wb_full":
            breakdown.wb_full += stall
        else:
            inval = min(inval_wait, stall)
            breakdown.write_inval += inval
            breakdown.write_other += stall - inval
        self._advance()

    # ------------------------------------------------------------------
    # Synchronization operations
    # ------------------------------------------------------------------
    def _do_sync(self, kind, addr):
        sim = self.sim
        breakdown = self.breakdown
        drain_start = sim.now
        if self.obs is not None:
            name = "lock" if kind == OP_LOCK else ("unlock" if kind == OP_UNLOCK else "barrier")
            self.obs.sync_enter(self.node, name)

        def drained():
            breakdown.synch_wb += sim.now - drain_start
            flush_start = sim.now

            def flushed():
                breakdown.dsi += sim.now - flush_start
                if kind == OP_LOCK:
                    self._lock(addr)
                elif kind == OP_UNLOCK:
                    self._unlock(addr)
                else:
                    self._barrier(addr)

            self.controller.flush_si(flushed)

        self.controller.drain_wb(drained)

    def _sync_write(self, block, done):
        status = self.controller.sync_write(
            block, self.stamps.next(), lambda _iw, _reason: done()
        )
        if status == "done":
            done()

    def _lock(self, addr):
        sim = self.sim
        start = sim.now
        block = addr >> self.block_shift

        def after_swap():
            if self.locks.acquire(addr, self.node, granted):
                self.breakdown.sync += sim.now - start
                if self.obs is not None:
                    self.obs.sync_exit(self.node, "lock")
                self._advance()

        def granted():
            # Handed the lock: the holder's release write invalidated our
            # copy of the lock word, so swap it back in.
            self._sync_write(block, finish)

        def finish():
            self.breakdown.sync += sim.now - start
            if self.obs is not None:
                self.obs.sync_exit(self.node, "lock")
            self._advance()

        self._sync_write(block, after_swap)

    def _unlock(self, addr):
        sim = self.sim
        start = sim.now
        block = addr >> self.block_shift

        def after_release():
            self.locks.release(addr, self.node)
            self.breakdown.sync += sim.now - start
            if self.obs is not None:
                self.obs.sync_exit(self.node, "unlock")
            self._advance()

        self._sync_write(block, after_release)

    def _barrier(self, barrier_id):
        sim = self.sim
        start = sim.now

        def released():
            self.breakdown.sync += sim.now - start
            if self.obs is not None:
                self.obs.sync_exit(self.node, "barrier")
            self._advance()

        self.barrier.arrive(self.node, barrier_id, released)

    # ------------------------------------------------------------------
    def _finish(self):
        drain_start = self.sim.now

        def drained():
            self.breakdown.synch_wb += self.sim.now - drain_start
            self.finished = True
            self.finish_time = self.sim.now

        self.controller.drain_wb(drained)

    def deadlock_diagnostic(self):
        if not self.finished:
            return f"proc {self.node}: stopped at op {self.idx}/{len(self.trace)}"
        return None

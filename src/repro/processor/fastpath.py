"""Direct execution: retire runs of plain cache hits outside the engine.

The Wisconsin Wind Tunnel got its speed from direct execution — the
overwhelming majority of memory accesses (private/valid hits) never enter
the discrete-event core.  This module is that idea for the trace-driven
processor: a :class:`FastPath` classifies a large *window* of upcoming
trace ops against the cache's vectorized tag snapshot
(:attr:`repro.memory.cache.Cache.tag_read` / ``tag_write``) with one
numpy compare, resolving each op to its cache frame up front, then
retires eligible runs in a tight loop that applies exactly the side
effects of the interpreted hit path (LRU touch, write stamps, hit
counters, compute time).  Each retirement checks the op's per-set
generation counter (:attr:`~repro.memory.cache.Cache.set_gens`, bumped
on every eligibility change): an unchanged set means the classification
is still exact and the op retires with a single integer compare.  A
changed set falls back to re-verifying the resolved frame
(tag/valid/s-bit/tear-off/state) and *heals* entries whose block moved
to another way, so a window survives fills and invalidations instead of
being rebuilt per miss — windows are rebuilt only when the processor
walks past their end.

Equivalence contract (proved run-for-run by
:mod:`repro.harness.equivalence`): the batcher must be invisible in the
:class:`~repro.stats.record.RunRecord`.  Concretely:

* **Eligibility** — an op is retired only when the interpreted loop's
  ``try_read`` / ``try_write`` would succeed *and* touch no DSI
  machinery: the block's frame is valid, unmarked (no s bit), not a
  tear-off copy, and — for writes — EXCLUSIVE.  Everything else
  (misses, marked blocks, WC write-buffer merges, sync ops) hands off
  to the unchanged scalar loop, which is the interpreted loop.
* **Scheduling** — the processor's bounded lookahead re-enters the
  event queue once per quantum.  The batcher finds the first quantum
  boundary arithmetically (a bisection of the window's cost
  prefix-sums) and schedules the *same* wakeup, at the same cycle, with
  the same gap-charged carry state, that the interpreted loop would —
  ``events_fired`` and every event timestamp are bit-identical.  A gap
  that crosses the quantum yields *before* its op is dispatched (the op
  needs no eligibility); a hit that crosses yields after retiring it.
* **State** — retirement replays the interpreted per-op effects in
  order: ``cache._clock``/``frame.lru`` bumps, one
  :class:`~repro.processor.cpu.StampSource` stamp per write (in global
  program order; misses still draw their stamps in the scalar path),
  ``read_hits``/``write_hits``, and ``breakdown.compute``.

The fast path is disabled under Tardis (hits mutate lease state), under
``check_invariants`` (the monitor observes every access), and via
``SystemConfig.direct_execution=False`` / ``DSI_NO_FASTPATH``.
Instrumented runs keep it on: the interpreted hit path fires no probes,
so neither does the batcher.
"""

from bisect import bisect_left

import numpy as np

from repro.memory.cache import EXCLUSIVE

OP_WRITE = 1

#: ops per classification window; amortizes the vectorized tag compare
WINDOW = 4096


class FastPath:
    """Per-processor direct-execution batcher."""

    __slots__ = (
        "proc", "sim", "cache", "misses", "stamps", "breakdown",
        "gaps", "kinds", "n_ops", "blocks", "sets_of",
        "quantum", "hit_cycles",
        "_ws", "_we", "_frames", "_blocks", "_kinds", "_sets", "_cum", "_gaps",
        "_setgens",
        "retired_ops", "windows_built", "handoffs", "boundaries",
    )

    def __init__(self, proc):
        ctrl = proc.controller
        self.proc = proc
        self.sim = proc.sim
        self.cache = ctrl.cache
        self.misses = ctrl.misses
        self.stamps = proc.stamps
        self.breakdown = proc.breakdown
        trace = proc.trace
        self.gaps = trace.gaps
        self.kinds = trace.kinds
        self.n_ops = len(trace.kinds)
        self.blocks = trace.addrs >> proc.block_shift
        self.sets_of = self.blocks % self.cache.n_sets
        self.quantum = proc.quantum
        self.hit_cycles = proc.hit_cycles
        self._ws = 0
        self._we = 0  # empty window: [0, 0)
        self._frames = []
        self._blocks = []
        self._kinds = []
        self._sets = []
        self._cum = None
        self._gaps = []
        self._setgens = []
        self.retired_ops = 0
        self.windows_built = 0
        self.handoffs = 0
        self.boundaries = 0

    # ------------------------------------------------------------------
    def _build_window(self, idx):
        """Classify ops [idx, idx+WINDOW) against the tag snapshot."""
        ws = idx
        we = min(self.n_ops, idx + WINDOW)
        blk = self.blocks[ws:we]
        knd = self.kinds[ws:we]
        sets_idx = self.sets_of[ws:we]
        cache = self.cache
        match = np.where(
            (knd == OP_WRITE)[:, None],
            cache.tag_write[sets_idx] == blk[:, None],
            cache.tag_read[sets_idx] == blk[:, None],
        )
        hit = match.any(axis=1) & (knd <= OP_WRITE)
        way = match.argmax(axis=1).tolist()
        hit = hit.tolist()
        sets_map = cache._sets_map  # materialized sets only; a hit implies a fill
        sets_list = sets_idx.tolist()
        self._frames = [
            sets_map[sets_list[p]][way[p]] if hit[p] else None
            for p in range(we - ws)
        ]
        self._ws = ws
        self._we = we
        self._blocks = blk.tolist()
        self._kinds = knd.tolist()
        self._sets = sets_list
        set_gens = cache.set_gens
        self._setgens = [set_gens[s] for s in sets_list]
        self._gaps = self.gaps[ws:we].tolist()
        self._cum = np.cumsum(self.gaps[ws:we] + self.hit_cycles).tolist()
        self.windows_built += 1

    # ------------------------------------------------------------------
    def advance(self, idx, elapsed):
        """Retire eligible ops starting at ``idx``.

        Returns ``None`` when a quantum boundary was reached: the
        processor's resume state is saved and the wakeup scheduled (the
        caller returns).  Otherwise returns ``(next_idx, elapsed)``:
        ops ``[idx, next_idx)`` were retired and the interpreted loop
        continues *in the same wakeup* at ``next_idx`` — scalar-path
        work, or the start of the next window.
        """
        if idx >= self._we or idx < self._ws:
            if idx >= WINDOW and (
                self.retired_ops * 4 < idx
                or self.retired_ops < 2 * self.handoffs
            ):
                # This processor's stream is miss-dominated or so heavily
                # DSI-marked that fast runs average under ~2 ops: the
                # per-call boundary arithmetic outruns the retirement
                # savings.  The batcher is semantically invisible, so
                # simply unplug it — the scalar loop alone is the
                # interpreted behaviour.
                self.proc._fast = None
                self.handoffs += 1
                return idx, elapsed
            self._build_window(idx)
        ws = self._ws
        p = idx - ws

        # Quick scalar check of the first op before binding anything else:
        # the common handoff (op idx is a miss/sync) must stay O(1) cheap —
        # at miss-heavy scales this path runs once per protocol transaction.
        kinds = self._kinds
        kind = kinds[p]
        if kind > OP_WRITE:
            self.handoffs += 1
            return idx, elapsed
        frames = self._frames
        cache = self.cache
        set_gens = cache.set_gens
        wingens = self._setgens
        sets_w = self._sets
        frame = frames[p]
        if set_gens[sets_w[p]] == wingens[p]:
            # The set is untouched since classification: the resolution is
            # still exact — no per-frame verification needed.
            if frame is None:
                self.handoffs += 1
                return idx, elapsed
        else:
            block = self._blocks[p]
            sets_map = cache._sets_map
            if (
                frame is None or frame.tag != block or not frame.valid
                or frame.s_bit or frame.tearoff
                or (kind and frame.state != EXCLUSIVE)
            ):
                frame = None
                for cand in sets_map.get(sets_w[p], ()):
                    if cand.tag == block and cand.valid:
                        frame = cand
                        break
                if (
                    frame is None or frame.s_bit or frame.tearoff
                    or (kind and frame.state != EXCLUSIVE)
                ):
                    self.handoffs += 1
                    return idx, elapsed
                frames[p] = frame
            wingens[p] = set_gens[sets_w[p]]

        # Boundary arithmetic over the window's cost prefix-sums:
        # F(j) = base + cum[j - ws] is the completion time of op j if
        # every op through j retires as a hit.
        cum = self._cum
        quantum = self.quantum
        hit_cycles = self.hit_cycles
        base = elapsed - (cum[p - 1] if p else 0)
        if self.proc._gap_charged:
            base -= self._gaps[p]
        j0 = ws + bisect_left(cum, quantum - base)
        gap_boundary = False
        if j0 < self._we:
            gap_boundary = base + cum[j0 - ws] - hit_cycles >= quantum
        # Retire [idx, stop); in the gap-boundary case op j0 itself is
        # *not* retired — the interpreted loop yields on its gap charge,
        # before dispatching it (so it needs no eligibility check).
        stop = min(j0 if gap_boundary else j0 + 1, self._we)
        if stop <= idx:
            # Op idx's own gap crosses the quantum: nothing retires; the
            # interpreted loop would charge the gap and yield carrying it.
            self.boundaries += 1
            done = base + cum[p] - hit_cycles
            self.breakdown.compute += done - elapsed
            proc = self.proc
            proc.idx = idx
            proc._gap_charged = True
            self.sim.schedule(done, proc._run)
            return None

        clock = cache._clock
        stamp = self.stamps._next
        blocks = self._blocks
        sets_map = cache._sets_map
        reads = 0
        writes = 0
        q = p  # first verified above
        limit = stop - ws
        while True:
            clock += 1
            frame.lru = clock
            if kind:
                stamp += 1
                frame.data = stamp
                frame.dirty = True
                writes += 1
            else:
                reads += 1
            q += 1
            if q >= limit:
                break
            frame = frames[q]
            kind = kinds[q]
            if kind > OP_WRITE:
                break
            if set_gens[sets_w[q]] == wingens[q]:
                # Unchanged set: the classified resolution is still exact.
                if frame is None:
                    break
                continue
            block = blocks[q]
            if (
                frame is None or frame.tag != block or not frame.valid
                or frame.s_bit or frame.tearoff
                or (kind and frame.state != EXCLUSIVE)
            ):
                frame = None
                for cand in sets_map.get(sets_w[q], ()):
                    if cand.tag == block and cand.valid:
                        frame = cand
                        break
                if (
                    frame is None or frame.s_bit or frame.tearoff
                    or (kind and frame.state != EXCLUSIVE)
                ):
                    break
                frames[q] = frame
            wingens[q] = set_gens[sets_w[q]]
        cache._clock = clock
        self.stamps._next = stamp
        self.misses.read_hits += reads
        self.misses.write_hits += writes
        self.retired_ops += q - p

        end = ws + q  # first op NOT retired
        done = base + cum[q - 1]  # completion time of the last retired op
        proc = self.proc
        if end < stop or j0 >= self._we:
            # Stopped at an ineligible op, or ran out of window, short of
            # any quantum boundary: continue in the interpreted loop.
            self.breakdown.compute += done - elapsed
            proc._gap_charged = False
            return end, done
        self.boundaries += 1
        if gap_boundary:
            # end == j0: charge op j0's gap and yield with it carried.
            done = base + cum[j0 - ws] - hit_cycles
            self.breakdown.compute += done - elapsed
            proc.idx = j0
            proc._gap_charged = True
            self.sim.schedule(done, proc._run)
            return None
        # end == j0 + 1: op j0's hit completed at/after the quantum.
        self.breakdown.compute += done - elapsed
        proc.idx = end
        proc._gap_charged = False
        self.sim.schedule(done, proc._run)
        return None

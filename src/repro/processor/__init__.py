"""Trace-driven processors and synchronization primitives."""

from repro.processor.cpu import Processor, StampSource
from repro.processor.sync import BarrierManager, LockManager

__all__ = ["BarrierManager", "LockManager", "Processor", "StampSource"]

"""Synchronization: swap-based queue locks and the hardware barrier.

The paper assumes SPARC ``swap`` instructions and a hardware barrier (100
cycles from the last arrival) are visible to the memory system (§5.1).

Locks are modelled at the semantic level — acquisition order is FIFO —
while their *coherence traffic* is produced by the processors: acquiring
and releasing performs swap-like synchronous writes to the lock word, so
contended lock blocks ping-pong between caches exactly as a test&set lock
block would, without simulating unbounded spinning.
"""

from collections import deque

from repro.errors import SimulationError


class _LockState:
    __slots__ = ("holder", "queue", "acquisitions", "contended")

    def __init__(self):
        self.holder = None
        self.queue = deque()
        self.acquisitions = 0
        self.contended = 0


class LockManager:
    """FIFO queue locks keyed by lock-word address."""

    def __init__(self):
        self._locks = {}

    def _state(self, addr):
        state = self._locks.get(addr)
        if state is None:
            state = _LockState()
            self._locks[addr] = state
        return state

    def acquire(self, addr, node, granted):
        """Try to take the lock.  Returns True if acquired immediately;
        otherwise queues and calls ``granted()`` when the lock is handed
        over (the caller then re-fetches the lock block)."""
        state = self._state(addr)
        if state.holder is None:
            state.holder = node
            state.acquisitions += 1
            return True
        state.contended += 1
        state.queue.append((node, granted))
        return False

    def release(self, addr, node):
        """Release; hands the lock to the next FIFO waiter, if any."""
        state = self._state(addr)
        if state.holder != node:
            raise SimulationError(
                f"node {node} released lock {addr:#x} held by {state.holder}"
            )
        if state.queue:
            next_node, granted = state.queue.popleft()
            state.holder = next_node
            state.acquisitions += 1
            granted()
        else:
            state.holder = None

    def holder(self, addr):
        state = self._locks.get(addr)
        return state.holder if state else None

    def stats(self):
        return {
            addr: (state.acquisitions, state.contended)
            for addr, state in self._locks.items()
        }

    def deadlock_diagnostic(self):
        stuck = [
            f"{addr:#x} held by {state.holder} with {len(state.queue)} waiting"
            for addr, state in self._locks.items()
            if state.queue
        ]
        if stuck:
            return "locks: " + "; ".join(stuck[:4])
        return None


class BarrierManager:
    """Hardware barrier: releases everyone ``latency`` cycles after the
    last arrival."""

    def __init__(self, sim, n_procs, latency):
        self.sim = sim
        self.n_procs = n_procs
        self.latency = latency
        self._waiting = []  # (node, barrier_id, callback)
        self.episodes = 0
        # Hook invoked with the released node list just before the release
        # callbacks run.  The machine uses it under Tardis to join every
        # node's program timestamp (a barrier orders *all* nodes, so each
        # must leave with pts >= every other's — otherwise a node could
        # keep reading a leased copy a pre-barrier remote write logically
        # superseded).
        self.on_release = None

    def arrive(self, node, barrier_id, released):
        for waiting_node, _bid, _cb in self._waiting:
            if waiting_node == node:
                raise SimulationError(f"node {node} arrived at a barrier twice")
        self._waiting.append((node, barrier_id, released))
        if len(self._waiting) == self.n_procs:
            ids = {bid for _n, bid, _cb in self._waiting}
            if len(ids) > 1:
                raise SimulationError(f"barrier id mismatch: {sorted(ids)}")
            batch, self._waiting = self._waiting, []
            self.episodes += 1
            self.sim.schedule(self.latency, self._release, batch)

    def _release(self, batch):
        if self.on_release is not None:
            self.on_release([node for node, _bid, _cb in batch])
        for _node, _bid, released in batch:
            released()

    def deadlock_diagnostic(self):
        if self._waiting:
            nodes = [node for node, _b, _c in self._waiting]
            return f"barrier: {len(nodes)}/{self.n_procs} arrived (nodes {nodes[:8]})"
        return None
